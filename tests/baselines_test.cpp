// Tests of the baseline concurrency controls (HTM+SGL, P8TM, Silo) and the
// Runtime façade dispatching over all four backends.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "baselines/htm_sgl.hpp"
#include "baselines/p8tm.hpp"
#include "baselines/silo.hpp"
#include "baselines/version_table.hpp"
#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace {

using si::util::AbortCause;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

void await(const std::atomic<bool>& flag) {
  si::util::Backoff b;
  while (!flag.load(std::memory_order_acquire)) b.pause();
}

// --- VersionTable ------------------------------------------------------------

TEST(VersionTableTest, LockUnlockBump) {
  si::baselines::VersionTable vt(8);
  const si::util::LineId line = 99;
  const auto v0 = vt.read_stable(line);
  ASSERT_TRUE(vt.try_lock(line));
  EXPECT_FALSE(vt.try_lock(line));
  vt.unlock(line, /*bump=*/true);
  EXPECT_EQ(vt.read_stable(line), v0 + 2);
  vt.bump(line);
  EXPECT_EQ(vt.read_stable(line), v0 + 4);
}

TEST(VersionTableTest, UnlockWithoutBumpKeepsVersion) {
  si::baselines::VersionTable vt(8);
  const auto v0 = vt.read_stable(5);
  ASSERT_TRUE(vt.try_lock(5));
  vt.unlock(5, /*bump=*/false);
  EXPECT_EQ(vt.read_stable(5), v0);
}

// --- HTM + SGL ---------------------------------------------------------------

TEST(HtmSglTest, CommitsSimpleTx) {
  si::baselines::HtmSgl cc;
  cc.register_thread(0);
  Cell x;
  cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{5}); });
  EXPECT_EQ(x.v, 5u);
  EXPECT_EQ(cc.thread_stats()[0].commits, 1u);
}

TEST(HtmSglTest, LargeFootprintFallsBackToSglWithCapacityAborts) {
  si::baselines::HtmSglConfig cfg;
  cfg.retries = 3;
  si::baselines::HtmSgl cc(cfg);
  cc.register_thread(0);
  std::vector<Cell> cells(200);
  std::uint64_t sum = 0;
  // Even a pure *read* footprint overflows plain HTM (reads are tracked).
  cc.execute(false, [&](auto& tx) {
    sum = 0;
    for (auto& c : cells) sum += tx.read(&c.v);
  });
  const auto& st = cc.thread_stats()[0];
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.sgl_commits, 1u);
  // Capacity aborts are persistent: one attempt, then straight to the SGL.
  EXPECT_EQ(st.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 1u);
}

TEST(HtmSglTest, SglAcquisitionKillsSubscribedTx) {
  si::baselines::HtmSglConfig cfg;
  cfg.retries = 1;
  si::baselines::HtmSgl cc(cfg);
  std::vector<Cell> big(100);
  Cell x;
  std::atomic<bool> victim_in_tx{false}, sgl_done{false};

  std::thread victim([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      (void)tx.read(&x.v);
      victim_in_tx.store(true, std::memory_order_release);
      // Park inside the attempt; the SGL acquisition must kill us, so poll.
      si::util::Backoff b;
      while (!sgl_done.load(std::memory_order_acquire)) {
        cc.htm().check_killed();
        b.pause();
      }
      tx.write(&x.v, std::uint64_t{1});
    });
  });
  std::thread sgl_user([&] {
    cc.register_thread(1);
    await(victim_in_tx);
    // Oversized tx: aborts for capacity, then takes the SGL and kills the
    // parked victim via the subscribed lock line.
    cc.execute(false, [&](auto& tx) {
      for (auto& c : big) tx.write(&c.v, std::uint64_t{2});
    });
    sgl_done.store(true, std::memory_order_release);
  });
  victim.join();
  sgl_user.join();
  const auto& vst = cc.thread_stats()[0];
  EXPECT_GE(vst.aborts_by_cause[static_cast<int>(AbortCause::kKilledBySgl)], 1u);
  EXPECT_EQ(vst.commits, 1u);  // eventually retried and committed
  EXPECT_EQ(x.v, 1u);
}

TEST(HtmSglTest, SerializableTransfers) {
  si::baselines::HtmSgl cc;
  constexpr int kAccounts = 8;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 100;
  auto stats = si::runtime::run_fixed_ops(cc, 4, 500, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(42 + tid);
    const int from = static_cast<int>(rng.below(kAccounts));
    const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
    cc.execute(false, [&](auto& tx) {
      const auto f = tx.read(&accounts[from].v);
      const auto g = tx.read(&accounts[to].v);
      tx.write(&accounts[from].v, f - 1);
      tx.write(&accounts[to].v, g + 1);
    });
  });
  EXPECT_EQ(stats.totals.commits, 2000u);
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.v;
  EXPECT_EQ(total, 100u * kAccounts);
}

// --- P8TM ----------------------------------------------------------------

TEST(P8tmTest, CommitsUpdateAndReadOnly) {
  si::baselines::P8tm cc;
  cc.register_thread(0);
  Cell x;
  cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{3}); });
  std::uint64_t seen = 0;
  cc.execute(true, [&](auto& tx) { seen = tx.read(&x.v); });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(cc.thread_stats()[0].commits, 2u);
  EXPECT_EQ(cc.thread_stats()[0].ro_commits, 1u);
}

TEST(P8tmTest, LargeReadSetUpdateCommits) {
  // P8TM also stretches capacity: update reads are software-tracked, not
  // TMCAM-tracked.
  si::baselines::P8tm cc;
  cc.register_thread(0);
  std::vector<Cell> cells(300);
  Cell out;
  cc.execute(false, [&](auto& tx) {
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += tx.read(&c.v);
    tx.write(&out.v, sum + 7);
  });
  EXPECT_EQ(out.v, 7u);
  EXPECT_EQ(cc.thread_stats()[0].sgl_commits, 0u);
}

TEST(P8tmTest, WriteSkewIsPreventedBySerializability) {
  // The same interleaving that materialises a write skew under SI-HTM
  // (see SiHtmSemantics.WriteSkewIsAllowed) must stay serializable under
  // P8TM: read {x, y}, write one of them to 0 only if the sum is still 2.
  // Serializable outcomes zero exactly one cell; SI would zero both.
  si::baselines::P8tm cc;
  Cell x, y;
  x.v = 1;
  y.v = 1;
  std::atomic<int> arrived{0};
  bool first_attempt[2] = {true, true};

  auto run = [&](int tid, Cell* mine) {
    cc.register_thread(tid);
    cc.execute(false, [&, tid, mine](auto& tx) {
      const auto sum = tx.read(&x.v) + tx.read(&y.v);
      if (first_attempt[tid]) {
        // Rendezvous only on the first attempt so both transactions truly
        // overlap; retries must not wait for a partner that already left.
        first_attempt[tid] = false;
        arrived.fetch_add(1, std::memory_order_acq_rel);
        si::util::Backoff b;
        while (arrived.load(std::memory_order_acquire) < 2) b.pause();
      }
      if (sum == 2) tx.write(&mine->v, std::uint64_t{0});
    });
  };
  std::thread t1([&] { run(0, &x); });
  std::thread t2([&] { run(1, &y); });
  t1.join();
  t2.join();
  EXPECT_EQ(x.v + y.v, 1u) << "both zeroed: write skew leaked through P8TM";
  std::uint64_t validation_aborts = 0;
  for (int t = 0; t < 2; ++t) {
    validation_aborts +=
        cc.thread_stats()[t].aborts_by_cause[static_cast<int>(AbortCause::kExplicit)];
  }
  EXPECT_GE(validation_aborts, 1u);
}

TEST(P8tmTest, SerializableTransfers) {
  si::baselines::P8tm cc;
  constexpr int kAccounts = 8;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 100;
  auto stats = si::runtime::run_fixed_ops(cc, 4, 400, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(7 + tid);
    const int from = static_cast<int>(rng.below(kAccounts));
    const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
    cc.execute(false, [&](auto& tx) {
      const auto f = tx.read(&accounts[from].v);
      const auto g = tx.read(&accounts[to].v);
      tx.write(&accounts[from].v, f - 1);
      tx.write(&accounts[to].v, g + 1);
    });
  });
  EXPECT_EQ(stats.totals.commits, 1600u);
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.v;
  EXPECT_EQ(total, 100u * kAccounts);
}

// --- Silo ----------------------------------------------------------------

TEST(SiloTest, ReadOwnBufferedWrites) {
  si::baselines::Silo cc;
  cc.register_thread(0);
  Cell x;
  x.v = 1;
  cc.execute(false, [&](auto& tx) {
    tx.write(&x.v, std::uint64_t{2});
    EXPECT_EQ(tx.read(&x.v), 2u);  // overlay, even though memory still holds 1
    tx.write(&x.v, std::uint64_t{3});
    EXPECT_EQ(tx.read(&x.v), 3u);
  });
  EXPECT_EQ(x.v, 3u);
}

TEST(SiloTest, WritesInvisibleUntilCommit) {
  si::baselines::Silo cc;
  Cell x;
  std::atomic<bool> wrote{false}, checked{false};
  std::uint64_t observed = ~0ull;

  std::thread writer([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      tx.write(&x.v, std::uint64_t{5});
      wrote.store(true, std::memory_order_release);
      await(checked);
    });
  });
  std::thread reader([&] {
    cc.register_thread(1);
    await(wrote);
    cc.execute(true, [&](auto& tx) { observed = tx.read(&x.v); });
    checked.store(true, std::memory_order_release);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(observed, 0u);  // buffered write was invisible
  EXPECT_EQ(x.v, 5u);
}

TEST(SiloTest, PartialOverlayOnWideRead) {
  si::baselines::Silo cc;
  cc.register_thread(0);
  struct alignas(kLineSize) Pair {
    std::uint64_t a = 1, b = 2;
  } p;
  cc.execute(false, [&](auto& tx) {
    tx.write(&p.b, std::uint64_t{20});
    Pair snap{};
    tx.read_bytes(&snap, &p, sizeof(Pair));
    EXPECT_EQ(snap.a, 1u);
    EXPECT_EQ(snap.b, 20u);  // buffered field overlaid into the wide read
  });
  EXPECT_EQ(p.a, 1u);
  EXPECT_EQ(p.b, 20u);
}

TEST(SiloTest, SerializableTransfers) {
  si::baselines::Silo cc;
  constexpr int kAccounts = 8;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 100;
  auto stats = si::runtime::run_fixed_ops(cc, 4, 600, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(99 + tid);
    const int from = static_cast<int>(rng.below(kAccounts));
    const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
    cc.execute(false, [&](auto& tx) {
      const auto f = tx.read(&accounts[from].v);
      const auto g = tx.read(&accounts[to].v);
      tx.write(&accounts[from].v, f - 1);
      tx.write(&accounts[to].v, g + 1);
    });
  });
  EXPECT_EQ(stats.totals.commits, 2400u);
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.v;
  EXPECT_EQ(total, 100u * kAccounts);
}

// --- Runtime façade --------------------------------------------------------

class RuntimeFacadeTest : public ::testing::TestWithParam<si::runtime::Backend> {};

TEST_P(RuntimeFacadeTest, TransfersConserveTotalOnEveryBackend) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 8;
  si::runtime::Runtime rt(cfg);
  constexpr int kAccounts = 8;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 100;

  auto stats = si::runtime::run_fixed_ops(rt, 3, 300, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(1 + tid);
    const int from = static_cast<int>(rng.below(kAccounts));
    const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
    rt.execute(false, [&](auto& tx) {
      const auto f = tx.read(&accounts[from].v);
      const auto g = tx.read(&accounts[to].v);
      tx.write(&accounts[from].v, f - 1);
      tx.write(&accounts[to].v, g + 1);
    });
  });
  EXPECT_EQ(stats.totals.commits, 900u);
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.v;
  EXPECT_EQ(total, 100u * kAccounts);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, RuntimeFacadeTest,
    ::testing::Values(si::runtime::Backend::kHtm, si::runtime::Backend::kSiHtm,
                      si::runtime::Backend::kP8tm, si::runtime::Backend::kSilo),
    [](const auto& info) {
      return std::string(si::runtime::to_string(info.param)) == "SI-HTM"
                 ? "SiHtm"
                 : std::string(si::runtime::to_string(info.param));
    });

TEST(RuntimeFacadeTest2, BackendFromString) {
  using si::runtime::Backend;
  using si::runtime::backend_from_string;
  EXPECT_EQ(backend_from_string("htm"), Backend::kHtm);
  EXPECT_EQ(backend_from_string("si-htm"), Backend::kSiHtm);
  EXPECT_EQ(backend_from_string("p8tm"), Backend::kP8tm);
  EXPECT_EQ(backend_from_string("silo"), Backend::kSilo);
  EXPECT_THROW(backend_from_string("nope"), std::invalid_argument);
}

}  // namespace
