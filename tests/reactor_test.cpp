// Lifecycle tests for the multi-reactor epoll front end (serve/reactor.hpp):
// a drain with pipelined requests in flight must answer every accepted
// request before the sockets close; a slow reader must be dropped by the
// outbound cap instead of buffering without bound; and a recorded
// multi-reactor serve run must still be admissible under SI.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/verify.hpp"
#include "serve/kv_app.hpp"
#include "serve/net.hpp"
#include "serve/reactor.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace si::serve {
namespace {

struct TestServer {
  ServiceConfig scfg;
  KvAppConfig acfg;
  std::unique_ptr<KvApp> app;
  std::unique_ptr<Service<KvApp>> svc;
  std::unique_ptr<ReactorPool<Service<KvApp>>> pool;

  explicit TestServer(int shards, int reactors,
                      std::size_t max_outbuf = 4u << 20,
                      si::check::HistoryRecorder* rec = nullptr) {
    scfg.shards = shards;
    scfg.runtime.backend = si::runtime::Backend::kSiHtm;
    scfg.runtime.recorder = rec;
    acfg.buckets = 64;
    acfg.seed_elements = 500;
    acfg.key_space = 1000;
    app = std::make_unique<KvApp>(acfg, scfg.shards);
    svc = std::make_unique<Service<KvApp>>(*app, scfg);
    ReactorConfig rcfg;
    rcfg.reactors = reactors;
    rcfg.port = 0;  // ephemeral
    rcfg.max_outbuf = max_outbuf;
    pool = std::make_unique<ReactorPool<Service<KvApp>>>(*svc, rcfg);
    std::string err;
    if (!pool->start(&err)) {
      ADD_FAILURE() << "reactor pool failed to start: " << err;
    }
  }

  void shutdown() {
    pool->drain_begin();
    svc->stop();
    pool->finish();
  }
};

int connect_or_die(std::uint16_t port) {
  std::string err;
  const int fd = net::connect_tcp("127.0.0.1", port, &err);
  EXPECT_GE(fd, 0) << err;
  return fd;
}

/// Blocking-reads response frames from `fd` until `want` frames arrived,
/// EOF, or the deadline. Returns the correlation ids seen.
std::vector<std::uint64_t> read_responses(int fd, std::size_t want,
                                          int deadline_ms = 10'000) {
  std::vector<std::uint64_t> ids;
  wire::FrameParser parser;
  char chunk[16 * 1024];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (ids.size() < want && std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 100) <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    parser.append(chunk, static_cast<std::size_t>(n));
    wire::FrameView f;
    while (parser.next(&f)) {
      std::uint64_t id = 0, value = 0;
      int status = -1;
      EXPECT_TRUE(wire::decode_response(f, &id, &status, &value));
      ids.push_back(id);
    }
  }
  EXPECT_FALSE(parser.poisoned());
  return ids;
}

// Drain with pipelined requests in flight: a client writes a whole pipeline
// window and the server begins shutdown immediately after — the final read
// sweep of drain_begin() must pull the requests out of the kernel buffer,
// the service must execute them, and finish() must flush every response
// before the socket closes. This is exactly the SIGTERM path of si_serve.
TEST(ReactorDrain, PipelinedInFlightRequestsAnsweredOnShutdown) {
  TestServer server(/*shards=*/2, /*reactors=*/2);
  const int fd = connect_or_die(server.pool->port());

  constexpr std::uint64_t kPipelined = 64;
  std::string batch;
  for (std::uint64_t i = 0; i < kPipelined; ++i) {
    wire::encode_request(&batch, /*id=*/1000 + i, KvApp::kPut,
                         /*key=*/i % 97, /*arg=*/i);
  }
  ASSERT_TRUE(net::send_all(fd, batch.data(), batch.size()));

  // Give the reactor a moment to accept the connection; the *requests* may
  // still be sitting unread in the kernel buffer when the drain starts —
  // that is the case under test.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.shutdown();

  const auto ids = read_responses(fd, kPipelined);
  ::close(fd);

  ASSERT_EQ(ids.size(), kPipelined) << "responses lost across the drain";
  std::set<std::uint64_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), kPipelined) << "duplicate correlation ids";
  for (std::uint64_t i = 0; i < kPipelined; ++i) {
    EXPECT_TRUE(uniq.count(1000 + i)) << "id " << 1000 + i << " missing";
  }

  const auto stats = server.pool->stats();
  EXPECT_EQ(stats.requests, kPipelined);
  EXPECT_EQ(stats.completions + stats.rejected, kPipelined);
  EXPECT_EQ(stats.parse_errors, 0u);
}

// A client that writes requests but never reads responses must be killed by
// the per-connection outbound cap — buffering stays bounded and no shard
// worker or other connection ever blocks on the slow reader.
TEST(ReactorBackpressure, SlowReaderIsDroppedByOutboundCap) {
  TestServer server(/*shards=*/1, /*reactors=*/1, /*max_outbuf=*/256);
  const int fd = connect_or_die(server.pool->port());
  // A tiny receive window keeps the kernel from absorbing the responses the
  // test wants stuck in the server's user-space outbound buffer.
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  // Keep writing without ever reading until the server resets us (or we have
  // offered far more than the cap plus any plausible kernel buffering).
  std::string batch;
  for (std::uint64_t i = 0; i < 256; ++i) {
    wire::encode_request(&batch, i, KvApp::kGet, i % 97, 0);
  }
  bool reset = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (int round = 0; round < 4096; ++round) {
    std::size_t off = 0;
    while (off < batch.size()) {
      const ssize_t n = ::send(fd, batch.data() + off, batch.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        reset = true;  // EPIPE/ECONNRESET: the server dropped us
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (reset || std::chrono::steady_clock::now() > deadline) break;
  }
  ::close(fd);
  EXPECT_TRUE(reset) << "server never dropped the slow reader";

  server.shutdown();
  const auto stats = server.pool->stats();
  EXPECT_GE(stats.overflow_drops, 1u);
  EXPECT_GE(stats.conns_dropped, 1u);
}

// A recorded multi-reactor serve run must be admissible under SI. One shard
// keeps the backend single-threaded so the recorded history is exact (see
// check/history.hpp); the front end still exercises two reactors and four
// pipelined connections routing completions back through the rings.
TEST(ReactorHistory, MultiReactorServeRunPassesSiChecker) {
  si::check::HistoryRecorder rec(1);
  TestServer server(/*shards=*/1, /*reactors=*/2, /*max_outbuf=*/4u << 20,
                    &rec);

  constexpr int kConns = 4;
  constexpr std::uint64_t kRounds = 8;
  constexpr std::uint64_t kPerRound = 16;
  int fds[kConns];
  for (int c = 0; c < kConns; ++c) fds[c] = connect_or_die(server.pool->port());

  std::uint64_t sent[kConns] = {};
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    // Interleave: write one pipelined window on every connection, then
    // collect every window, so both reactors hold in-flight requests at
    // once and completions interleave across the rings.
    for (int c = 0; c < kConns; ++c) {
      std::string batch;
      for (std::uint64_t i = 0; i < kPerRound; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(c) << 32) | (round * kPerRound + i);
        const std::uint64_t key = (id * 2654435761u) % 500;
        const std::uint16_t op = i % 3 == 0   ? KvApp::kPut
                                 : i % 3 == 1 ? KvApp::kGet
                                              : KvApp::kDel;
        wire::encode_request(&batch, id, op, key, id);
        ++sent[c];
      }
      ASSERT_TRUE(net::send_all(fds[c], batch.data(), batch.size()));
    }
    for (int c = 0; c < kConns; ++c) {
      const auto ids = read_responses(fds[c], kPerRound);
      ASSERT_EQ(ids.size(), kPerRound)
          << "conn " << c << " round " << round;
      for (std::uint64_t id : ids) {
        EXPECT_EQ(id >> 32, static_cast<std::uint64_t>(c))
            << "response routed to the wrong connection";
      }
    }
  }
  for (int c = 0; c < kConns; ++c) ::close(fds[c]);
  server.shutdown();

  const auto stats = server.pool->stats();
  EXPECT_EQ(stats.requests, kConns * kRounds * kPerRound);
  EXPECT_EQ(stats.parse_errors, 0u);

  const auto verdict = si::check::verify_si(rec.merged());
  EXPECT_TRUE(verdict.ok()) << si::check::describe(verdict);
  EXPECT_GT(verdict.committed, 0u);
  EXPECT_GT(verdict.reads_checked, 0u);
}

}  // namespace
}  // namespace si::serve
