// Randomized concurrent property harness for the map zoo (ISSUE 6 satellite):
// seeded op mixes against a single-threaded std::map oracle.
//
// The trick that makes concurrent results checkable offline is a shared
// version cell that every update transaction reads and re-writes. Updates
// therefore WW-conflict pairwise: first-committer-wins gives them a total
// order with dense, unique versions, and an update's own map effects see
// exactly the prefix of updates below its version. Read-only transactions
// read the cell inside the same snapshot as their lookup/scan, so "the
// oracle's answer at some snapshot point" becomes concrete: the oracle state
// after replaying updates 1..snap. Every get/put/del result and every range
// result is then checked exactly — this is the linearization check for
// updates and the snapshot check for ranges, per structure, per protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "runtime/runtime.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace {

using si::maps::RangeEntry;
using si::runtime::Backend;

#if defined(__SANITIZE_THREAD__)
#define SI_MAPS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SI_MAPS_TSAN 1
#endif
#endif

constexpr int kThreads = 4;
#ifdef SI_MAPS_TSAN
constexpr int kOpsPerThread = 400;  // TSan is ~20x slower
#else
constexpr int kOpsPerThread = 1500;
#endif
constexpr std::uint64_t kKeySpace = 256;
constexpr std::uint64_t kScanWidth = 16;  // max hits < buffer, never truncates

struct alignas(si::util::kLineSize) VersionCell {
  std::uint64_t v = 0;
};

struct Update {
  std::uint64_t ver = 0;
  bool is_put = false;
  std::uint64_t key = 0;
  std::uint64_t val = 0;
  bool result = false;
};

struct PointRead {
  std::uint64_t snap = 0;
  std::uint64_t key = 0;
  std::uint64_t val = 0;
  bool found = false;
};

struct Scan {
  std::uint64_t snap = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::vector<RangeEntry> hits;
};

struct ThreadLog {
  std::vector<Update> updates;
  std::vector<PointRead> reads;
  std::vector<Scan> scans;
};

template <typename Map>
void worker(si::runtime::Runtime& rt, Map& map, VersionCell& ver, int tid,
            std::uint64_t seed, typename Map::Pool& pool, ThreadLog& log) {
  rt.register_thread(tid);
  si::util::Xoshiro256 rng(seed ^ (0xABCDEFULL * (tid + 1)));
  typename Map::ScratchT scratch(pool);
  RangeEntry buf[64];
  for (int i = 0; i < kOpsPerThread; ++i) {
    const std::uint64_t d = rng.below(100);
    const std::uint64_t key = 1 + rng.below(kKeySpace);
    if (d < 40) {
      PointRead r;
      r.key = key;
      rt.execute(true, [&](auto& tx) {
        r.snap = tx.read(&ver.v);
        r.val = 0;
        r.found = map.lookup(tx, key, &r.val);
      });
      log.reads.push_back(r);
    } else if (d < 60) {
      Scan s;
      s.lo = key;
      s.hi = key + kScanWidth - 1;
      std::size_t n = 0;
      rt.execute(true, [&](auto& tx) {
        s.snap = tx.read(&ver.v);
        n = 0;
        map.range(tx, s.lo, s.hi, [&](std::uint64_t k, std::uint64_t v) {
          buf[n++] = RangeEntry{k, v};
          return n < 64;
        });
      });
      s.hits.assign(buf, buf + n);
      log.scans.push_back(s);
    } else {
      Update u;
      u.is_put = d < 80;
      u.key = key;
      u.val = rng() | 1;
      typename Map::Node* unlinked = nullptr;
      rt.execute(false, [&](auto& tx) {
        scratch.reset();
        unlinked = nullptr;
        const std::uint64_t v0 = tx.read(&ver.v);
        tx.write(&ver.v, v0 + 1);
        u.ver = v0 + 1;
        u.result = u.is_put ? map.insert(tx, u.key, u.val, scratch)
                            : map.remove(tx, u.key, &unlinked);
      });
      scratch.settle();
      if (unlinked != nullptr) pool.retire(unlinked);
      pool.advance();
      log.updates.push_back(u);
    }
  }
}

template <typename Map>
void run_property(Backend backend, std::uint64_t seed) {
  si::runtime::Runtime rt({.backend = backend, .max_threads = kThreads});
  Map map;
  VersionCell ver;
  // Pools outlive the threads: their arenas own the nodes linked into the
  // shared map, which the post-join verification still traverses.
  std::vector<typename Map::Pool> pools(kThreads);
  std::vector<ThreadLog> logs(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back(
        [&, t] { worker(rt, map, ver, t, seed, pools[t], logs[t]); });
  for (auto& w : workers) w.join();

  // Updates must have dense unique versions 1..N (they serialize on the
  // version cell; a duplicate would be a first-committer-wins violation).
  std::vector<Update> updates;
  for (const auto& log : logs)
    updates.insert(updates.end(), log.updates.begin(), log.updates.end());
  std::sort(updates.begin(), updates.end(),
            [](const Update& a, const Update& b) { return a.ver < b.ver; });
  ASSERT_EQ(ver.v, updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i)
    ASSERT_EQ(updates[i].ver, i + 1) << "non-dense update versions";

  // Replay updates against the oracle, checking each linearized result.
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::map<std::uint64_t, std::uint64_t>> states;
  states.reserve(updates.size() + 1);
  states.push_back(oracle);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const Update& u = updates[i];
    if (u.is_put) {
      const bool fresh = oracle.insert_or_assign(u.key, u.val).second;
      ASSERT_EQ(u.result, fresh) << "put #" << u.ver;
    } else {
      ASSERT_EQ(u.result, oracle.erase(u.key) > 0) << "del #" << u.ver;
    }
    states.push_back(oracle);
  }

  // Every read-only result must equal the oracle's answer at its snapshot.
  for (const auto& log : logs) {
    for (const auto& r : log.reads) {
      ASSERT_LE(r.snap, updates.size());
      const auto& st = states[r.snap];
      const auto it = st.find(r.key);
      ASSERT_EQ(r.found, it != st.end()) << "get at snapshot " << r.snap;
      if (r.found) ASSERT_EQ(r.val, it->second);
    }
    for (const auto& s : log.scans) {
      ASSERT_LE(s.snap, updates.size());
      const auto& st = states[s.snap];
      std::vector<RangeEntry> want;
      for (auto it = st.lower_bound(s.lo); it != st.end() && it->first <= s.hi;
           ++it)
        want.push_back({it->first, it->second});
      ASSERT_EQ(s.hits.size(), want.size()) << "scan at snapshot " << s.snap;
      for (std::size_t j = 0; j < want.size(); ++j) {
        ASSERT_EQ(s.hits[j].key, want[j].key);
        ASSERT_EQ(s.hits[j].value, want[j].value);
      }
    }
  }

  // Final state and invariants, after all threads quiesced.
  const auto dump = si::maps::map_dump(map);
  ASSERT_EQ(dump.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < dump.size(); ++i, ++it)
    ASSERT_EQ(dump[i].key, it->first);
  EXPECT_TRUE(map.structure_ok());
}

template <typename MapT>
class MapsPropertyTest : public ::testing::Test {};

using MapTypes =
    ::testing::Types<si::maps::SkipList, si::maps::Bst, si::maps::Btree>;
TYPED_TEST_SUITE(MapsPropertyTest, MapTypes);

TYPED_TEST(MapsPropertyTest, SiHtm) {
  run_property<TypeParam>(Backend::kSiHtm, 0x51);
}
TYPED_TEST(MapsPropertyTest, HtmSgl) {
  run_property<TypeParam>(Backend::kHtm, 0x52);
}
TYPED_TEST(MapsPropertyTest, P8tm) {
  run_property<TypeParam>(Backend::kP8tm, 0x53);
}
TYPED_TEST(MapsPropertyTest, Silo) {
  run_property<TypeParam>(Backend::kSilo, 0x54);
}

}  // namespace
