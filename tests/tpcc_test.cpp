// TPC-C tests: loader invariants, per-transaction logic (single-threaded via
// a pass-through handle), and cross-backend concurrent consistency.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "tpcc/db.hpp"
#include "tpcc/transactions.hpp"
#include "tpcc/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::tpcc;

struct DirectTx {
  template <typename T>
  T read(const T* addr) {
    return *addr;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    *addr = v;
  }
  void read_bytes(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);
  }
};

DbConfig tiny_db(int warehouses = 1) {
  DbConfig cfg;
  cfg.warehouses = warehouses;
  cfg.items = 200;
  cfg.customers_per_district = 60;
  cfg.initial_orders_per_district = 40;
  cfg.order_ring_bits = 8;
  cfg.history_ring_bits = 10;
  return cfg;
}

// --- random helpers -----------------------------------------------------

TEST(TpccRandom, NurandStaysInRange) {
  si::util::Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto v = nurand(rng, 1023, 1, 3000, 259);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 3000u);
  }
}

TEST(TpccRandom, NurandIsNonUniform) {
  // The OR of two uniforms skews low bits; spot-check that the distribution
  // is visibly non-flat (the hallmark of NURand item popularity).
  si::util::Xoshiro256 rng(2);
  int histogram[8] = {};
  for (int i = 0; i < 80000; ++i) {
    histogram[nurand(rng, 8191, 1, 8000, 7911) / 1001]++;
  }
  int lo = histogram[0], hi = histogram[0];
  for (int h : histogram) {
    lo = std::min(lo, h);
    hi = std::max(hi, h);
  }
  EXPECT_GT(hi, lo * 5 / 4);  // > 25% spread between octiles
}

TEST(TpccRandom, LastnameSyllables) {
  char out[16];
  lastname(0, out);
  EXPECT_STREQ(out, "BARBARBAR");
  lastname(371, out);
  EXPECT_STREQ(out, "PRICALLYOUGHT");
  lastname(999, out);
  EXPECT_STREQ(out, "EINGEINGEING");
}

// --- loader ----------------------------------------------------------------

TEST(TpccLoader, CardinalitiesAndInitialState) {
  Db db(tiny_db(2));
  for (int w = 1; w <= 2; ++w) {
    EXPECT_EQ(db.warehouse(w).w_id, w);
    EXPECT_EQ(db.warehouse(w).w_ytd, 300'000'00);
    for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
      EXPECT_EQ(db.district(w, d).d_next_o_id, 41);
      // 30% of the 40 initial orders are queued for delivery.
      EXPECT_EQ(db.no_queue(w, d).tail - db.no_queue(w, d).head, 12);
    }
  }
  EXPECT_TRUE(db.check_ytd_consistency());
  EXPECT_TRUE(db.check_order_id_consistency());
}

TEST(TpccLoader, NameIndexCoversAllCustomersSortedByFirstName) {
  Db db(tiny_db());
  std::size_t indexed = 0;
  for (int num = 0; num < 1000; ++num) {
    const auto& group = db.customers_by_name(1, 1, num);
    indexed += group.size();
    for (std::size_t i = 1; i < group.size(); ++i) {
      EXPECT_LE(std::strncmp(db.customer(1, 1, group[i - 1]).c_first,
                             db.customer(1, 1, group[i]).c_first, 16),
                0);
    }
    for (auto c : group) {
      char expect[16];
      lastname(num, expect);
      EXPECT_STREQ(db.customer(1, 1, c).c_last, expect);
    }
  }
  EXPECT_EQ(indexed, 60u);
}

TEST(TpccLoader, UndeliveredOrdersHaveNoCarrier) {
  Db db(tiny_db());
  const auto& q = db.no_queue(1, 1);
  for (std::int64_t pos = q.head; pos < q.tail; ++pos) {
    const std::int64_t o_id = db.no_ring_slot(1, 1, pos);
    EXPECT_EQ(db.order_slot(1, 1, o_id).o_carrier_id, 0);
  }
}

TEST(TpccLoader, RejectsInvalidConfig) {
  DbConfig bad = tiny_db();
  bad.initial_orders_per_district = 10000;  // exceeds 2^8 ring
  EXPECT_THROW(Db{bad}, std::invalid_argument);
  DbConfig zero = tiny_db();
  zero.warehouses = 0;
  EXPECT_THROW(Db{zero}, std::invalid_argument);
}

// --- transaction logic (single-threaded) -----------------------------------

TEST(TpccNewOrder, AdvancesOrderIdAndWritesLines) {
  Db db(tiny_db());
  DirectTx tx;
  si::util::Xoshiro256 rng(5);
  const NewOrderInput in = make_new_order_input(db, 1, rng);
  const std::int64_t before = db.district(1, in.d_id).d_next_o_id;
  const std::int64_t queue_before =
      db.no_queue(1, in.d_id).tail - db.no_queue(1, in.d_id).head;

  const NewOrderResult r = new_order(tx, db, in, 123);

  EXPECT_EQ(r.o_id, before);
  EXPECT_EQ(db.district(1, in.d_id).d_next_o_id, before + 1);
  EXPECT_EQ(db.no_queue(1, in.d_id).tail - db.no_queue(1, in.d_id).head,
            queue_before + 1);
  EXPECT_EQ(db.last_order_of(1, in.d_id, in.c_id), r.o_id);

  const Order& o = db.order_slot(1, in.d_id, r.o_id);
  EXPECT_EQ(o.o_c_id, in.c_id);
  EXPECT_EQ(o.o_ol_cnt, in.ol_cnt);
  EXPECT_EQ(o.o_carrier_id, 0);
  EXPECT_GT(r.total_amount, 0);
  for (int l = 1; l <= in.ol_cnt; ++l) {
    const OrderLine& ol = db.order_line(1, in.d_id, r.o_id, l);
    EXPECT_EQ(ol.ol_o_id, r.o_id);
    EXPECT_EQ(ol.ol_i_id, in.lines[l - 1].i_id);
    EXPECT_EQ(ol.ol_amount, db.item(ol.ol_i_id).i_price * ol.ol_quantity);
  }
  EXPECT_TRUE(db.check_order_id_consistency());
}

TEST(TpccNewOrder, RestocksBelowTen) {
  Db db(tiny_db());
  DirectTx tx;
  NewOrderInput in;
  in.w_id = 1;
  in.d_id = 1;
  in.c_id = 1;
  in.ol_cnt = 1;
  in.lines[0] = {.i_id = 7, .supply_w_id = 1, .quantity = 10};
  db.stock(1, 7).s_quantity = 12;  // 12 - 10 < 10 triggers the +91 restock
  new_order(tx, db, in, 1);
  EXPECT_EQ(db.stock(1, 7).s_quantity, 12 - 10 + 91);
  EXPECT_EQ(db.stock(1, 7).s_ytd, 10);
  EXPECT_EQ(db.stock(1, 7).s_order_cnt, 1);

  db.stock(1, 7).s_quantity = 50;  // plain decrement path
  new_order(tx, db, in, 2);
  EXPECT_EQ(db.stock(1, 7).s_quantity, 40);
}

TEST(TpccPayment, UpdatesBalancesAndYtdConsistency) {
  Db db(tiny_db());
  DirectTx tx;
  PaymentInput in;
  in.w_id = 1;
  in.d_id = 2;
  in.c_w_id = 1;
  in.c_d_id = 2;
  in.c_id = 3;
  in.amount = 12345;
  const Money bal_before = db.customer(1, 2, 3).c_balance;
  payment(tx, db, in, 9);
  EXPECT_EQ(db.customer(1, 2, 3).c_balance, bal_before - 12345);
  EXPECT_EQ(db.customer(1, 2, 3).c_payment_cnt, 2);
  EXPECT_TRUE(db.check_ytd_consistency());
  const History& h = db.history_slot(1, 0);
  EXPECT_EQ(h.h_amount, 12345);
  EXPECT_EQ(h.h_c_id, 3);
}

TEST(TpccPayment, BadCreditRewritesData) {
  Db db(tiny_db());
  // Find a bad-credit customer (10% are loaded as "BC").
  int bc = 0;
  for (int c = 1; c <= db.config().customers_per_district; ++c) {
    if (db.customer(1, 1, c).c_credit[0] == 'B') {
      bc = c;
      break;
    }
  }
  ASSERT_NE(bc, 0) << "loader produced no bad-credit customer in 60";
  DirectTx tx;
  PaymentInput in;
  in.w_id = in.c_w_id = 1;
  in.d_id = in.c_d_id = 1;
  in.c_id = bc;
  in.amount = 777;
  payment(tx, db, in, 1);
  EXPECT_NE(std::strstr(db.customer(1, 1, bc).c_data, "777"), nullptr);
}

TEST(TpccPayment, SelectByLastNamePicksMedian) {
  Db db(tiny_db());
  // Name number 0 ("BARBARBAR") covers customers 1..min(1000, C): for C=60
  // every customer has a sequential name, so group 0 = {1}.
  const int c = select_customer_by_name(db, 1, 1, 0);
  EXPECT_EQ(c, 1);
  EXPECT_EQ(select_customer_by_name(db, 1, 1, 999), 0);  // empty group
}

TEST(TpccOrderStatus, ReturnsLatestOrder) {
  Db db(tiny_db());
  DirectTx tx;
  si::util::Xoshiro256 rng(8);
  NewOrderInput in = make_new_order_input(db, 1, rng);
  in.c_id = 5;
  const NewOrderResult r = new_order(tx, db, in, 77);
  const OrderStatusResult os = order_status(tx, db, 1, in.d_id, 5, 0);
  EXPECT_EQ(os.o_id, r.o_id);
  EXPECT_EQ(os.o_carrier_id, 0);
  EXPECT_EQ(os.lines, in.ol_cnt);
}

TEST(TpccDelivery, PopsOldestAndCreditsCustomer) {
  Db db(tiny_db());
  DirectTx tx;
  const auto& q = db.no_queue(1, 1);
  const std::int64_t oldest = db.no_ring_slot(1, 1, q.head);
  const int c_id = db.order_slot(1, 1, oldest).o_c_id;
  const Money bal_before = db.customer(1, 1, c_id).c_balance;

  Money expected_total = 0;
  const Order& o = db.order_slot(1, 1, oldest);
  for (int l = 1; l <= o.o_ol_cnt; ++l) {
    expected_total += db.order_line(1, 1, oldest, l).ol_amount;
  }

  const std::int64_t delivered = delivery_district(tx, db, 1, 1, 6, 55);
  EXPECT_EQ(delivered, oldest);
  EXPECT_EQ(db.order_slot(1, 1, oldest).o_carrier_id, 6);
  EXPECT_EQ(db.customer(1, 1, c_id).c_balance, bal_before + expected_total);
  EXPECT_EQ(db.customer(1, 1, c_id).c_delivery_cnt, 1);
  for (int l = 1; l <= o.o_ol_cnt; ++l) {
    EXPECT_EQ(db.order_line(1, 1, oldest, l).ol_delivery_d, 55);
  }
}

TEST(TpccDelivery, EmptyQueueReturnsZero) {
  Db db(tiny_db());
  DirectTx tx;
  int popped = 0;
  while (delivery_district(tx, db, 1, 1, 1, 1) != 0) ++popped;
  EXPECT_EQ(popped, 12);  // exactly the loaded backlog
  EXPECT_EQ(delivery_district(tx, db, 1, 1, 1, 1), 0);
}

TEST(TpccStockLevel, ThresholdMonotonic) {
  Db db(tiny_db());
  DirectTx tx;
  std::vector<std::int32_t> scratch;
  const int at_10 = stock_level(tx, db, 1, 1, 10, scratch);
  const int at_50 = stock_level(tx, db, 1, 1, 50, scratch);
  const int at_1000 = stock_level(tx, db, 1, 1, 1000, scratch);
  EXPECT_LE(at_10, at_50);
  EXPECT_LE(at_50, at_1000);
  EXPECT_EQ(at_10, 0);            // loader floor is s_quantity >= 10
  EXPECT_GT(at_1000, 0);          // everything is below 1000
}

// --- workload mix ------------------------------------------------------------

TEST(TpccMix, PaperMixesAddUpTo100) {
  EXPECT_EQ(Mix::standard().total(), 100u);
  EXPECT_EQ(Mix::read_dominated().total(), 100u);
}

TEST(TpccMix, SampleFollowsConfiguredShares) {
  Workload w(tiny_db(), Mix::read_dominated(), 1);
  int counts[5] = {};
  for (int i = 0; i < 20000; ++i) {
    counts[static_cast<int>(w.sample(0))]++;
  }
  EXPECT_NEAR(counts[static_cast<int>(TxType::kOrderStatus)] / 20000.0, 0.80, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(TxType::kNewOrder)] / 20000.0, 0.08, 0.02);
}

// --- cross-backend concurrency ------------------------------------------------

class TpccBackendTest : public ::testing::TestWithParam<si::runtime::Backend> {};

TEST_P(TpccBackendTest, MixedRunPreservesDatabaseConsistency) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 8;
  si::runtime::Runtime rt(cfg);

  Workload w(tiny_db(2), Mix::standard(), 4);
  auto stats = si::runtime::run_fixed_ops(rt, 3, 120, [&](int tid) { w.step(rt, tid); });

  EXPECT_EQ(stats.totals.commits, 360u);
  EXPECT_TRUE(w.db().check_ytd_consistency());
  EXPECT_TRUE(w.db().check_order_id_consistency());
}

TEST_P(TpccBackendTest, ConcurrentNewOrdersAllocateDistinctIds) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 8;
  si::runtime::Runtime rt(cfg);

  Workload w(tiny_db(1), Mix::standard(), 4);
  constexpr int kThreads = 3, kOps = 60;
  std::int64_t next_before = 0;
  for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
    next_before += w.db().district(1, d).d_next_o_id;
  }
  si::runtime::run_fixed_ops(rt, kThreads, kOps,
                             [&](int tid) { w.run(rt, tid, TxType::kNewOrder); });
  std::int64_t next_after = 0;
  for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
    next_after += w.db().district(1, d).d_next_o_id;
  }
  // Every committed NEW-ORDER advanced exactly one district's d_next_o_id.
  EXPECT_EQ(next_after - next_before, kThreads * kOps);
  EXPECT_TRUE(w.db().check_order_id_consistency());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TpccBackendTest,
    ::testing::Values(si::runtime::Backend::kHtm, si::runtime::Backend::kSiHtm,
                      si::runtime::Backend::kP8tm, si::runtime::Backend::kSilo),
    [](const auto& info) {
      return std::string(si::runtime::to_string(info.param)) == "SI-HTM"
                 ? "SiHtm"
                 : std::string(si::runtime::to_string(info.param));
    });

}  // namespace
