// Unit tests for the SI history checker (src/check): hand-written histories
// that the verifier must accept (valid SI, including SI-HTM's mid-transaction
// snapshot points and the write skews SI famously admits) and reject (the
// paper's Fig. 3 dirty-read / torn-snapshot anomalies, lost updates), plus
// single-threaded round-trips through every real-thread backend.
#include <cctype>
#include <cstdint>

#include <gtest/gtest.h>

#include "check/history.hpp"
#include "check/verify.hpp"
#include "runtime/runtime.hpp"

namespace {

using si::check::Event;
using si::check::HistoryBuilder;
using si::check::HistoryRecorder;
using si::check::VerifyResult;
using si::check::Violation;
using si::check::verify_si;

constexpr std::uintptr_t kX = 0x1000;
constexpr std::uintptr_t kY = 0x2000;

bool has_kind(const VerifyResult& r, Violation::Kind kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(Verify, EmptyHistoryOk) {
  const VerifyResult r = verify_si({});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.committed, 0u);
}

TEST(Verify, SerialUpdatesOk) {
  HistoryBuilder h;
  h.init(kX, 0)
      .begin(0).read(0, kX, 0).write(0, kX, 1).commit(0)
      .begin(0).read(0, kX, 1).write(0, kX, 2).commit(0);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_EQ(r.committed, 2u);
  EXPECT_EQ(r.reads_checked, 2u);
}

// Fig. 2-style valid SI: the reader overlaps the writer but observes the
// pre-write snapshot of both locations.
TEST(Verify, ConcurrentReaderSeesOldSnapshotOk) {
  HistoryBuilder h;
  h.init(kX, 0).init(kY, 0);
  h.begin(0).begin(1, /*ro=*/true);
  h.read(1, kX, 0);
  h.write(0, kX, 1).write(0, kY, 1);
  h.read(1, kY, 0);
  h.commit(0).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

// SI-HTM admits snapshots that land mid-transaction (a transaction beginning
// during another's quiescence adopts that writer's commit as its snapshot):
// the reader begins before the writer commits but sees both new values.
TEST(Verify, SnapshotPointMidTransactionOk) {
  HistoryBuilder h;
  h.init(kX, 0).init(kY, 0);
  h.begin(1, /*ro=*/true);
  h.begin(0).write(0, kX, 1).write(0, kY, 1).commit(0);
  h.read(1, kX, 1).read(1, kY, 1).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

// Write skew (disjoint write sets, crossed reads) is allowed under SI —
// the checker must not be over-strict and demand serializability.
TEST(Verify, WriteSkewAllowed) {
  HistoryBuilder h;
  h.init(kX, 0).init(kY, 0);
  h.begin(0).begin(1);
  h.read(0, kX, 0).read(1, kY, 0);
  h.write(0, kY, 1).write(1, kX, 1);
  h.commit(0).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(Verify, DirtyReadOfUncommittedWriteRejected) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 1);
  h.begin(1).read(1, kX, 1).commit(1);  // reads t0's pending write
  h.commit(0);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kDirtyRead)) << describe(r);
}

TEST(Verify, ReadOfAbortedWriteRejected) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 7);
  h.begin(1).read(1, kX, 7).commit(1);
  h.abort(0);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kDirtyRead)) << describe(r);
}

// Aborted writes must stay invisible — but a reader that never saw them is
// fine even though the abort happened mid-overlap.
TEST(Verify, AbortedWriterInvisibleOk) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 7);
  h.begin(1).read(1, kX, 0).commit(1);
  h.abort(0);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_EQ(r.aborted, 1u);
}

// The paper's Fig. 3 anomaly: a raw-ROT reader sees x before and y after
// another transaction's commit — no single snapshot explains both reads.
TEST(Verify, TornSnapshotRejected) {
  HistoryBuilder h;
  h.init(kX, 0).init(kY, 0);
  h.begin(1, /*ro=*/true).read(1, kX, 0);
  h.begin(0).write(0, kX, 1).write(0, kY, 1).commit(0);
  h.read(1, kY, 1).commit(1);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kNonSnapshotRead)) << describe(r);
  // The minimal fragment names the two irreconcilable reads.
  for (const auto& v : r.violations) {
    if (v.kind == Violation::Kind::kNonSnapshotRead) {
      EXPECT_GE(v.fragment.size(), 2u);
    }
  }
}

// First-committer-wins: both transactions read x=100, both commit a write of
// x — the second committer overwrote an update it never saw.
TEST(Verify, LostUpdateRejected) {
  HistoryBuilder h;
  h.init(kX, 100);
  h.begin(0).begin(1);
  h.read(0, kX, 100).read(1, kX, 100);
  h.write(0, kX, 90).commit(0);
  h.write(1, kX, 110).commit(1);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kLostUpdate)) << describe(r);
}

// Same shape but sequential: t1 reads after t0's commit, so its snapshot
// postdates t0 and the re-write is legal.
TEST(Verify, SequentialRewriteAllowed) {
  HistoryBuilder h;
  h.init(kX, 100);
  h.begin(0).read(0, kX, 100).write(0, kX, 90).commit(0);
  h.begin(1).read(1, kX, 90).write(1, kX, 80).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

// A blind writer (no reads) is concurrent with another writer of the same
// location, but its snapshot may be placed after the first commit — GSI
// allows it and so does the checker.
TEST(Verify, ConcurrentBlindWriteAllowed) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).begin(1);
  h.write(0, kX, 1).commit(0);
  h.write(1, kX, 2).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(Verify, ReadOwnWriteMismatchRejected) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 5).read(0, kX, 6).commit(0);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kReadOwnWrite)) << describe(r);
}

TEST(Verify, ReadOwnWriteMatchOk) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 5).read(0, kX, 5).write(0, kX, 6).commit(0);
  h.begin(1).read(1, kX, 6).commit(1);  // last write wins at commit
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(Verify, MalformedNestedBeginRejected) {
  HistoryBuilder h;
  h.begin(0).begin(0);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kMalformed));
}

TEST(Verify, MalformedAccessOutsideTxRejected) {
  HistoryBuilder h;
  h.read(0, kX, 0);
  const VerifyResult r = verify_si(h.events());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_kind(r, Violation::Kind::kMalformed));
}

// A transaction cut off by the end of the run counts as aborted; its writes
// must not become a committed version.
TEST(Verify, UnterminatedTransactionTreatedAsAborted) {
  HistoryBuilder h;
  h.init(kX, 0);
  h.begin(0).write(0, kX, 9);  // never ends
  h.begin(1).read(1, kX, 0).commit(1);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_EQ(r.aborted, 1u);
  EXPECT_EQ(r.committed, 1u);
}

// Locations accessed with inconsistent lengths are excluded, not guessed at.
TEST(Verify, InconsistentLengthSkipped) {
  HistoryBuilder h;
  h.init(kX, 0, /*len=*/8);
  h.begin(0).read(0, kX, 1234, /*len=*/4).commit(0);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_EQ(r.skipped_locations, 1u);
}

// Unknown initial values (no init event) must never be misjudged.
TEST(Verify, UnknownInitialValueWildcardOk) {
  HistoryBuilder h;
  h.begin(0).read(0, kX, 0xDEAD).commit(0);
  h.begin(1).write(1, kX, 1).commit(1);
  h.begin(0).read(0, kX, 1).commit(0);
  const VerifyResult r = verify_si(h.events());
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(Verify, DescribeMentionsViolationKind) {
  HistoryBuilder h;
  h.init(kX, 100);
  h.begin(0).begin(1);
  h.read(0, kX, 100).read(1, kX, 100);
  h.write(0, kX, 90).commit(0);
  h.write(1, kX, 110).commit(1);
  const std::string text = describe(verify_si(h.events()));
  EXPECT_NE(text.find("lost-update"), std::string::npos) << text;
}

// --- recorder round-trips through the real-thread backends -----------------
//
// Single-threaded, so the recorded order is exact (check/history.hpp): a
// small counter workload on each backend must verify clean.

class RealBackendRoundTrip
    : public ::testing::TestWithParam<si::runtime::Backend> {};

TEST_P(RealBackendRoundTrip, SingleThreadedHistoryVerifies) {
  HistoryRecorder rec(4);
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 4;
  cfg.recorder = &rec;
  si::runtime::Runtime rt(cfg);
  rt.register_thread(0);

  std::uint64_t counter = 0;
  std::uint64_t side = 0;
  rec.init(&counter, sizeof counter, &counter);
  rec.init(&side, sizeof side, &side);

  for (int i = 0; i < 20; ++i) {
    rt.execute(false, [&](auto& tx) {
      const std::uint64_t c = tx.read(&counter);
      tx.write(&counter, c + 1);
      tx.write(&side, c);
    });
    rt.execute(true, [&](auto& tx) {
      (void)tx.read(&counter);
      (void)tx.read(&side);
    });
  }
  EXPECT_EQ(counter, 20u);

  const VerifyResult r = verify_si(rec.merged());
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_GE(r.committed, 40u);
  EXPECT_GT(r.reads_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RealBackendRoundTrip,
                         ::testing::Values(si::runtime::Backend::kHtm,
                                           si::runtime::Backend::kSiHtm,
                                           si::runtime::Backend::kP8tm,
                                           si::runtime::Backend::kSilo),
                         [](const auto& info) {
                           std::string name(si::runtime::to_string(info.param));
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

}  // namespace
