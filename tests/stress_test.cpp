// Fault-injection and adversarial stress for the P8-HTM emulation: kill
// storms, suspend/resume churn, capacity pressure from all sides, and mixed
// plain/transactional traffic. These tests care about liveness (no deadlock
// in the kill/help protocol) and the no-uncommitted-data invariant under
// hostile interleavings, not about throughput.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/sihtm.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::p8;
using si::util::AbortCause;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

TEST(StressKillStorm, SweeperVsSubscribersStaysLive) {
  // One thread repeatedly sweeps a line with kill_line_owners while several
  // others subscribe to it — the handshake must neither deadlock nor leak
  // registrations. Subscribers run a *bounded* number of transactions: a
  // single sweep only returns once the line is momentarily unowned, so an
  // unbounded re-subscription storm could starve it (real SGL subscribers
  // stop re-subscribing once they observe the lock taken).
  HtmRuntime rt{HtmConfig{}};
  Cell lock_word;
  std::atomic<int> active_subscribers{3};
  std::atomic<std::uint64_t> kills{0}, survivals{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    rt.register_thread(0);
    while (active_subscribers.load(std::memory_order_acquire) > 0) {
      rt.kill_line_owners(&lock_word, AbortCause::kKilledBySgl);
      std::this_thread::yield();
    }
    rt.kill_line_owners(&lock_word, AbortCause::kKilledBySgl);  // final sweep
  });
  for (int t = 1; t <= 3; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      for (int i = 0; i < 150; ++i) {
        rt.begin(TxMode::kHtm);
        try {
          rt.subscribe_line(&lock_word);
          for (int spin = 0; spin < 50; ++spin) rt.check_killed();
          rt.commit();
          survivals.fetch_add(1, std::memory_order_relaxed);
        } catch (const TxAbort&) {
          kills.fetch_add(1, std::memory_order_relaxed);
        }
      }
      active_subscribers.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(kills.load() + survivals.load(), 3u * 150u);
  // After the storm the line must be fully released (the sweep returned).
}

TEST(StressSuspend, HelpersRollBackSuspendedVictimsUnderChurn) {
  // Writers suspend mid-transaction while readers hammer their write sets;
  // every read must return the pre-transactional value via helper rollback.
  HtmRuntime rt{HtmConfig{}};
  constexpr int kWriters = 2, kReaders = 2, kRounds = 150;
  std::vector<Cell> cells(8);
  for (auto& c : cells) c.v = 7;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      si::util::Xoshiro256 rng(50 + t);
      for (int i = 0; i < kRounds; ++i) {
        const auto idx = rng.below(cells.size());
        try {
          rt.begin(TxMode::kRot);
          rt.store(&cells[idx].v, std::uint64_t{999});
          rt.suspend();
          std::this_thread::yield();  // linger suspended: helpers must act
          rt.resume();
          // Roll our own write back so the invariant value 7 is permanent.
          rt.self_abort(AbortCause::kExplicit);
        } catch (const TxAbort&) {
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      si::util::Xoshiro256 rng(80 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto idx = rng.below(cells.size());
        const auto seen = rt.plain_load(&cells[idx].v);
        if (seen != 7) bad.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load()) << "a reader observed an uncommitted value";
  for (auto& c : cells) EXPECT_EQ(c.v, 7u);
}

TEST(StressCapacity, TmcamNeverLeaksUnderAbortChurn) {
  HtmRuntime rt{HtmConfig{}};
  constexpr int kThreads = 3;
  std::vector<Cell> cells(200);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);  // distinct cores (scatter pinning)
      si::util::Xoshiro256 rng(90 + t);
      for (int i = 0; i < 200; ++i) {
        const auto n = 32 + rng.below(64);  // sometimes exceeds 64
        try {
          rt.begin(TxMode::kRot);
          for (std::uint64_t k = 0; k < n; ++k) {
            rt.store(&cells[(t * 67 + k) % cells.size()].v, k);
          }
          rt.commit();
        } catch (const TxAbort&) {
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int core = 0; core < 10; ++core) {
    EXPECT_EQ(rt.tmcam_used(core), 0u) << "core " << core;
  }
}

// Owned-line fast path (DESIGN.md section 5.1): repeat accesses to lines a
// transaction already owns skip the bucket lock entirely, so this hammers
// exactly that unlocked path from several writers while plain readers watch
// the same lines for torn values. Run once with the fast path on and once
// force-disabled: both runs must stay untorn, finish the same deterministic
// number of commits, and only the enabled run may report cache hits.
std::uint64_t owned_line_hammer(bool fast_path,
                                si::util::FastPathStats* fp_out) {
  HtmConfig cfg;
  cfg.owned_line_fast_path = fast_path;
  HtmRuntime rt{cfg};
  constexpr int kWriters = 6, kReaders = 2, kCommitsPerWriter = 40;
  constexpr std::size_t kCells = 4, kRepeats = 24;
  std::vector<Cell> cells(kCells);
  std::atomic<int> writers_left{kWriters};
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> commits{0};

  // Every committed value replicates one byte across the word, so any mix of
  // two values (a torn read) fails this check.
  auto untorn = [](std::uint64_t v) {
    return v == (v & 0xFF) * 0x0101010101010101ULL;
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      si::util::Xoshiro256 rng(910 + t);
      for (int done = 0; done < kCommitsPerWriter;) {
        const std::uint64_t pattern =
            (1 + rng.below(255)) * 0x0101010101010101ULL;
        try {
          rt.begin(TxMode::kRot);
          for (std::size_t r = 0; r < kRepeats; ++r) {
            for (auto& c : cells) rt.store(&c.v, pattern);
          }
          // Read-own-write goes through the write-owner role of the cache.
          for (auto& c : cells) {
            if (rt.load(&c.v) != pattern) torn.store(true);
          }
          rt.commit();
          ++done;
          commits.fetch_add(1, std::memory_order_relaxed);
        } catch (const TxAbort&) {
        }
      }
      writers_left.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      std::size_t i = 0;
      while (writers_left.load(std::memory_order_acquire) > 0) {
        const auto seen = rt.plain_load(&cells[i % kCells].v);
        if (!untorn(seen)) torn.store(true);
        ++i;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn.load()) << "torn value observed (fast_path="
                            << fast_path << ")";
  // Write locks are held to commit, so committed writers serialize: the
  // final state is the last committer's pattern on every line.
  for (auto& c : cells) {
    EXPECT_TRUE(untorn(c.v));
    EXPECT_EQ(c.v, cells[0].v);
  }
  if (fp_out) *fp_out = rt.fast_path_totals();
  return commits.load();
}

TEST(StressFastPath, OwnedLineHammerUntornWithIdenticalCommits) {
  si::util::FastPathStats fp_on, fp_off;
  const auto commits_on = owned_line_hammer(true, &fp_on);
  const auto commits_off = owned_line_hammer(false, &fp_off);
  EXPECT_EQ(commits_on, commits_off);
  EXPECT_GT(fp_on.hits, 0u);
  EXPECT_EQ(fp_off.hits, 0u);  // disabled: every access takes the slow path
}

TEST(StressMixed, SiHtmSurvivesAdversarialMixAndStaysConsistent) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 6;
  cfg.retries = 3;
  si::sihtm::SiHtm cc(cfg);
  constexpr int kCells = 6;
  constexpr std::uint64_t kInitial = 500;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.v = kInitial;

  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      cc.register_thread(t);
      si::util::Xoshiro256 rng(700 + t);
      for (int i = 0; i < 400; ++i) {
        const int choice = static_cast<int>(rng.below(3));
        if (choice == 0) {  // scan
          std::uint64_t sum = 0;
          cc.execute(true, [&](auto& tx) {
            sum = 0;
            for (auto& c : cells) sum += tx.read(&c.v);
          });
          if (sum != kInitial * kCells) bad.store(true);
        } else if (choice == 1) {  // transfer
          const int a = static_cast<int>(rng.below(kCells));
          const int b = (a + 1) % kCells;
          cc.execute(false, [&](auto& tx) {
            const auto va = tx.read(&cells[a].v);
            const auto vb = tx.read(&cells[b].v);
            tx.write(&cells[a].v, va - 1);
            tx.write(&cells[b].v, vb + 1);
          });
        } else {  // oversized write set: forces the SGL path under churn
          Cell scratch[70];
          cc.execute(false, [&](auto& tx) {
            for (auto& s : scratch) tx.write(&s.v, std::uint64_t{1});
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  std::uint64_t total = 0;
  for (auto& c : cells) total += c.v;
  EXPECT_EQ(total, kInitial * kCells);
}

TEST(StressObs, ConcurrentEmittersWithMidRunCounterReads) {
  // The tracer's thread-safety claim: emitters never share a slot (each owns
  // its ring) and the cursor is safe to read from any thread mid-run. Hammer
  // both sides at once — under TSan this is the proof.
  if (!si::obs::kTraceEnabled) GTEST_SKIP() << "built with SI_TRACE=0";
  constexpr int kThreads = 6;
  constexpr std::uint64_t kEvents = 20000;
  si::obs::Tracer tracer(kThreads, 1u << 8);  // small ring: constant wrapping
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        tracer.emit(t, si::obs::TraceEventKind::kBegin, static_cast<double>(i));
        tracer.emit(t, si::obs::TraceEventKind::kCommit,
                    static_cast<double>(i) + 0.5, 1);
      }
    });
  }
  std::thread reader([&] {
    std::uint64_t sum = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int t = 0; t < kThreads; ++t) {
        sum += tracer.emitted(t) + tracer.dropped(t);
      }
    }
    // One guaranteed pass after the emitters finish: on a loaded single-CPU
    // host the reader may never get scheduled before stop flips, so the
    // mid-run reads alone cannot be asserted on.
    for (int t = 0; t < kThreads; ++t) {
      sum += tracer.emitted(t) + tracer.dropped(t);
    }
    EXPECT_GT(sum, 0u);
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  reader.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(tracer.emitted(t), 2 * kEvents);
    EXPECT_EQ(tracer.dropped(t), 2 * kEvents - tracer.capacity());
    const auto recs = tracer.drain(t);
    EXPECT_EQ(recs.size(), tracer.capacity());
    for (const auto& r : recs) EXPECT_EQ(r.tid, t);
  }
}

TEST(StressObs, TracedAdversarialMixStaysBalanced) {
  // Full-stack version: obs attached to a real SiHtm run with kills,
  // capacity overflows and SGL fallbacks. Every drained ring must hold
  // balanced attempt brackets (begin / commit-or-abort alternation) and the
  // metrics commit count must match the backend's own statistics.
  if (!si::obs::kTraceEnabled) GTEST_SKIP() << "built with SI_TRACE=0";
  constexpr int kThreads = 4;
  si::obs::Tracer tracer(kThreads);
  si::obs::Metrics metrics(kThreads);
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = kThreads;
  cfg.retries = 3;
  cfg.obs = si::obs::ObsConfig{&tracer, &metrics};
  si::sihtm::SiHtm cc(cfg);
  std::vector<Cell> cells(8);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cc.register_thread(t);
      si::util::Xoshiro256 rng(900 + t);
      for (int i = 0; i < 300; ++i) {
        if (rng.percent(40)) {
          std::uint64_t sum = 0;
          cc.execute(true, [&](auto& tx) {
            sum = 0;
            for (auto& c : cells) sum += tx.read(&c.v);
          });
        } else if (rng.percent(10)) {  // oversized: forces the SGL path
          Cell scratch[70];
          cc.execute(false, [&](auto& tx) {
            for (auto& s : scratch) tx.write(&s.v, std::uint64_t{1});
          });
        } else {
          const auto a = rng.below(cells.size());
          cc.execute(false, [&](auto& tx) {
            tx.write(&cells[a].v, tx.read(&cells[a].v) + 1);
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t traced_commits = 0;
  for (int t = 0; t < kThreads; ++t) {
    bool open = false;
    for (const auto& r : tracer.drain(t)) {
      switch (r.kind) {
        case si::obs::TraceEventKind::kBegin:
          EXPECT_FALSE(open) << "tid " << t << ": begin inside open attempt";
          open = true;
          break;
        case si::obs::TraceEventKind::kCommit:
          EXPECT_TRUE(open);
          open = false;
          ++traced_commits;
          break;
        case si::obs::TraceEventKind::kAbort:
          EXPECT_TRUE(open);
          open = false;
          break;
        default:
          break;
      }
    }
    EXPECT_FALSE(open) << "tid " << t << ": attempt left open";
    EXPECT_EQ(tracer.dropped(t), 0u);
  }
  std::uint64_t commits = 0;
  for (const auto& st : cc.thread_stats()) commits += st.commits;
  EXPECT_EQ(traced_commits, commits);
  EXPECT_EQ(metrics.snapshot().commit_latency.count(), commits);
}

}  // namespace
