// Tests for the contention-aware retry budgets (protocol/retry_budget.hpp)
// and their wiring through the runtime façade: the per-thread EWMA must
// shrink the budget under an abort storm, recover it on commits, weight
// straggler kills harder, and — when disabled — leave the cores on the
// static retry count so existing schedules stay bit-for-bit identical.
#include <gtest/gtest.h>

#include <cstdint>

#include "protocol/retry_budget.hpp"
#include "runtime/runtime.hpp"
#include "util/stats.hpp"

namespace si::protocol {
namespace {

TEST(RetryBudget, FreshThreadGetsTheFullBudget) {
  RetryBudgetConfig cfg;
  cfg.enabled = true;
  RetryBudget b;
  EXPECT_EQ(b.budget(cfg), cfg.max_retries);
  EXPECT_DOUBLE_EQ(b.abort_ewma(), 0.0);
}

TEST(RetryBudget, AbortStormShrinksToMinAndCommitsRecover) {
  RetryBudgetConfig cfg;
  cfg.enabled = true;
  RetryBudget b;

  // Unbroken aborts drive the EWMA toward 1 and the budget to the floor.
  int prev = b.budget(cfg);
  for (int i = 0; i < 100; ++i) {
    b.on_abort(cfg, si::util::AbortCause::kConflictWrite);
    const int now = b.budget(cfg);
    EXPECT_LE(now, prev) << "budget rose during an abort storm";
    prev = now;
  }
  EXPECT_EQ(b.budget(cfg), cfg.min_retries);
  EXPECT_GT(b.abort_ewma(), 0.99);

  // Unbroken commits recover it back to the ceiling.
  for (int i = 0; i < 200; ++i) {
    b.on_commit(cfg);
    const int now = b.budget(cfg);
    EXPECT_GE(now, prev) << "budget fell while committing cleanly";
    prev = now;
  }
  EXPECT_EQ(b.budget(cfg), cfg.max_retries);
  EXPECT_LT(b.abort_ewma(), 0.01);
}

// Straggler kills are the signal that this thread's ROTs are what everyone
// else's safety waits are stuck on; they must push the budget down faster
// than ordinary conflicts.
TEST(RetryBudget, StragglerKillsWeighHeavier) {
  RetryBudgetConfig cfg;
  cfg.enabled = true;
  RetryBudget plain, straggled;
  for (int i = 0; i < 5; ++i) {
    plain.on_abort(cfg, si::util::AbortCause::kConflictWrite);
    straggled.on_abort(cfg, si::util::AbortCause::kKilledAsStraggler);
  }
  EXPECT_GT(straggled.abort_ewma(), plain.abort_ewma());
  EXPECT_LE(straggled.budget(cfg), plain.budget(cfg));
}

TEST(RetryBudget, BudgetNeverLeavesTheConfiguredRange) {
  RetryBudgetConfig cfg;
  cfg.enabled = true;
  cfg.min_retries = 3;
  cfg.max_retries = 7;
  RetryBudget b;
  for (int i = 0; i < 50; ++i) {
    b.on_abort(cfg, si::util::AbortCause::kKilledAsStraggler);  // ewma > 1
    const int budget = b.budget(cfg);
    EXPECT_GE(budget, cfg.min_retries);
    EXPECT_LE(budget, cfg.max_retries);
  }
}

// The runtime plumbing: with the budget enabled, every backend that has a
// retry loop still executes every transaction to completion (the budget
// only moves *when* the SGL fallback engages, never whether work commits).
TEST(RetryBudget, EnabledRuntimeStillCommitsEverything) {
  for (const auto backend : {si::runtime::Backend::kHtm,
                             si::runtime::Backend::kSiHtm,
                             si::runtime::Backend::kP8tm}) {
    si::runtime::RuntimeConfig cfg;
    cfg.backend = backend;
    cfg.max_threads = 1;
    cfg.retry_budget.enabled = true;
    cfg.retry_budget.min_retries = 1;
    cfg.retry_budget.max_retries = 4;
    si::runtime::Runtime rt(cfg);
    rt.register_thread(0);

    std::uint64_t counter = 0;
    constexpr std::uint64_t kN = 200;
    for (std::uint64_t i = 0; i < kN; ++i) {
      rt.execute(/*is_ro=*/false, [&](auto& tx) {
        const auto v = tx.read(&counter);
        tx.write(&counter, v + 1);
      });
    }
    std::uint64_t readback = 0;
    rt.execute(/*is_ro=*/true, [&](auto& tx) { readback = tx.read(&counter); });
    EXPECT_EQ(readback, kN) << si::runtime::to_string(backend);

    std::uint64_t commits = 0;
    for (const auto& ts : rt.thread_stats()) commits += ts.commits;
    EXPECT_EQ(commits, kN + 1) << si::runtime::to_string(backend);
  }
}

}  // namespace
}  // namespace si::protocol
