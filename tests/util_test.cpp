// Unit tests for src/util: cache-line math, RNG, stats, CLI, locks, clock.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/logical_clock.hpp"
#include "util/rng.hpp"
#include "util/slim_lock.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace {

using namespace si::util;

TEST(Cacheline, LineOfMapsWholeLineToSameId) {
  alignas(kLineSize) unsigned char buf[2 * kLineSize];
  const LineId first = line_of(&buf[0]);
  EXPECT_EQ(line_of(&buf[kLineSize - 1]), first);
  EXPECT_EQ(line_of(&buf[kLineSize]), first + 1);
}

TEST(Cacheline, LinesSpanned) {
  EXPECT_EQ(lines_spanned(0, 0), 0u);
  EXPECT_EQ(lines_spanned(0, 1), 1u);
  EXPECT_EQ(lines_spanned(0, kLineSize), 1u);
  EXPECT_EQ(lines_spanned(0, kLineSize + 1), 2u);
  EXPECT_EQ(lines_spanned(kLineSize - 1, 2), 2u);
}

TEST(Cacheline, Power8Geometry) {
  EXPECT_EQ(kLineSize, 128u);
  EXPECT_EQ(kTmcamLinesPerCore, 64u);  // 8 KiB / 128 B
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(7);
  EXPECT_NE(a2(), c());
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInclusiveBounds) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PercentExtremes) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.percent(0));
    EXPECT_TRUE(rng.percent(100));
  }
}

TEST(Rng, PercentRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.percent(30);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.30, 0.01);
}

TEST(LogicalClockTest, StartsAboveCompletedSentinel) {
  LogicalClock clock;
  EXPECT_GT(clock.now(), 1u);
}

TEST(LogicalClockTest, StrictlyMonotonic) {
  LogicalClock clock;
  auto prev = clock.now();
  for (int i = 0; i < 1000; ++i) {
    const auto next = clock.now();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(LogicalClockTest, TotallyOrderedAcrossThreads) {
  LogicalClock clock;
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) seen[t].push_back(clock.now());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
}

TEST(SpinlockTest, MutualExclusionUnderContention) {
  Spinlock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::lock_guard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinlockTest, TryLockFailsWhenHeld) {
  Spinlock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(OwnedGlobalLockTest, OwnerIdentity) {
  OwnedGlobalLock gl;
  EXPECT_FALSE(gl.is_locked());
  gl.lock(3);
  EXPECT_TRUE(gl.is_locked());
  EXPECT_TRUE(gl.is_locked_by(3));
  EXPECT_FALSE(gl.is_locked_by(4));
  EXPECT_FALSE(gl.try_lock(4));
  gl.unlock();
  EXPECT_FALSE(gl.is_locked());
  EXPECT_TRUE(gl.try_lock(4));
  gl.unlock();
}

TEST(StatsTest, ClassifyMatchesPaperTaxonomy) {
  EXPECT_EQ(classify(AbortCause::kConflictRead), AbortClass::kTransactional);
  EXPECT_EQ(classify(AbortCause::kConflictWrite), AbortClass::kTransactional);
  EXPECT_EQ(classify(AbortCause::kExplicit), AbortClass::kTransactional);
  EXPECT_EQ(classify(AbortCause::kCapacity), AbortClass::kCapacity);
  EXPECT_EQ(classify(AbortCause::kKilledBySgl), AbortClass::kNonTransactional);
  // Killed *by* a completed transaction, not a transactional conflict of the
  // victim's own making: paper section 4.1 counts it as non-transactional.
  EXPECT_EQ(classify(AbortCause::kKilledAsStraggler),
            AbortClass::kNonTransactional);
}

TEST(StatsTest, AggregateSumsThreads) {
  std::vector<ThreadStats> per(3);
  per[0].commits = 10;
  per[1].commits = 5;
  per[2].commits = 1;
  per[0].record_abort(AbortCause::kCapacity);
  per[1].record_abort(AbortCause::kConflictRead);
  per[1].record_abort(AbortCause::kConflictRead);
  const RunStats rs = aggregate(per, 2.0);
  EXPECT_EQ(rs.totals.commits, 16u);
  EXPECT_EQ(rs.total_aborts(), 3u);
  EXPECT_EQ(rs.aborts_in_class(AbortClass::kCapacity), 1u);
  EXPECT_EQ(rs.aborts_in_class(AbortClass::kTransactional), 2u);
  EXPECT_DOUBLE_EQ(rs.throughput(), 8.0);
}

TEST(StatsTest, AbortPctUsesAttempts) {
  std::vector<ThreadStats> per(1);
  per[0].commits = 75;
  for (int i = 0; i < 25; ++i) per[0].record_abort(AbortCause::kConflictWrite);
  const RunStats rs = aggregate(per, 1.0);
  EXPECT_DOUBLE_EQ(rs.abort_pct(), 25.0);
  EXPECT_DOUBLE_EQ(rs.abort_pct(AbortClass::kTransactional), 25.0);
  EXPECT_DOUBLE_EQ(rs.abort_pct(AbortClass::kCapacity), 0.0);
}

TEST(StatsTest, PrintSeriesMentionsSystemAndClasses) {
  std::vector<SeriesPoint> pts(1);
  pts[0].threads = 8;
  pts[0].stats.totals.commits = 100;
  pts[0].stats.elapsed_seconds = 1;
  std::ostringstream os;
  print_series(os, "SI-HTM", pts, 1.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("SI-HTM"), std::string::npos);
  EXPECT_NE(out.find("transactional"), std::string::npos);
  EXPECT_NE(out.find("capacity"), std::string::npos);
}

TEST(CliTest, ParsesShortAndLongFlags) {
  const char* argv[] = {"prog", "-o", "80", "--name=tpcc", "--verbose", "pos1"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("o", 0), 80);
  EXPECT_EQ(cli.get("name"), "tpcc");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("absent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(CliTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("threads", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("dur", 1.5), 1.5);
  EXPECT_EQ(cli.get("mix", "std"), "std");
}

TEST(CliTest, ParseIntList) {
  EXPECT_EQ(parse_int_list("1,2,4,8", {}), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(parse_int_list("", {3}), (std::vector<int>{3}));
  EXPECT_EQ(parse_int_list("40", {}), (std::vector<int>{40}));
}

TEST(BackoffTest, PausesWithoutCrashing) {
  Backoff b;
  for (int i = 0; i < 200; ++i) b.pause();
  b.reset();
  b.pause();
}

}  // namespace
