// Stress tests for the futex-backed slim lock behind the SGL
// (util/slim_lock.hpp, DESIGN.md section 11). These run real threads and
// deliberately protect *plain* (non-atomic) data with the lock: under TSan
// any hole in the exclusion or in the upgrade drain shows up as a data
// race, which is a far sharper oracle than counting. The thread counts stay
// small and the iteration counts moderate so the suite is usable on a
// single-CPU host — oversubscription is fine here because contended
// acquisitions park on the futex instead of spinning.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/slim_lock.hpp"

namespace {

using si::util::OwnedGlobalLock;
using si::util::SglImpl;
using si::util::SlimLock;

constexpr int kThreads = 4;
constexpr int kIters = 2500;

// Update mode is a mutex: a plain counter incremented under the lock must
// come out exact (and TSan must see no race on it). The parked/woken
// hand-offs are exercised naturally — four threads on few cores guarantees
// contended acquisitions that go through park().
TEST(SlimLockTest, UpdateModeMutualExclusion) {
  SlimLock lk;
  std::uint64_t guarded = 0;  // plain on purpose: the lock is the only guard
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lk.lock_update();
        ++guarded;
        lk.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(guarded, static_cast<std::uint64_t>(kThreads) * kIters);
}

// try_lock_update must never admit a second holder: a plain "inside" flag
// flips strictly false -> true -> false within each critical section.
TEST(SlimLockTest, TryLockUpdateRespectsHolder) {
  SlimLock lk;
  bool inside = false;  // plain: only ever touched while holding the lock
  std::uint64_t entries = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        while (!lk.try_lock_update()) std::this_thread::yield();
        EXPECT_FALSE(inside);
        inside = true;
        ++entries;
        inside = false;
        lk.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(entries, static_cast<std::uint64_t>(kThreads) * kIters);
}

// The SGL protocol shape: writers take update mode, upgrade to exclusive,
// and only then touch the data; readers join in shared mode whenever the
// door is open (lock free, or a holder still mid-drain). If upgrade()
// failed to drain shared holders — or unlock_shared() lost the wake-up
// that lets the upgrader proceed — a reader would observe a torn batch
// (and TSan would flag the plain read/write overlap).
TEST(SlimLockTest, UpgradeDrainsSharedHolders) {
  constexpr int kCells = 8;
  constexpr int kWriterIters = 800;
  SlimLock lk;
  std::uint64_t cells[kCells] = {};  // plain: batch-updated under exclusive
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> shared_joins{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!lk.try_lock_shared()) {
          std::this_thread::yield();
          continue;
        }
        shared_joins.fetch_add(1, std::memory_order_relaxed);
        for (int c = 1; c < kCells; ++c) {
          EXPECT_EQ(cells[c], cells[0]) << "torn batch at cell " << c;
        }
        lk.unlock_shared();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kWriterIters; ++i) {
        lk.lock_update();
        lk.upgrade();
        for (auto& c : cells) ++c;
        lk.unlock();
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  for (int c = 0; c < kCells; ++c) {
    EXPECT_EQ(cells[c], static_cast<std::uint64_t>(2) * kWriterIters);
  }
  // With the lock free most of the time the shared door must have opened.
  EXPECT_GT(shared_joins.load(), 0u);
}

// wait_not_locked() is a sleep-based wait hint: returning means the waiter
// observed the writer bit clear, which (acquire load against unlock()'s
// release) makes everything the holder wrote visible.
TEST(SlimLockTest, WaitNotLockedSeesHoldersWrites) {
  SlimLock lk;
  std::uint64_t value = 0;  // plain: published by unlock(), read after wait
  lk.lock_update();
  std::thread waiter([&] {
    lk.wait_not_locked();
    EXPECT_EQ(value, 42u);
  });
  value = 42;
  lk.unlock();
  waiter.join();
}

// TTAS mode is the no-overlap baseline: the shared door never opens and
// acquisitions spin instead of parking (zero wake-ups slept through), but
// exclusion itself is identical.
TEST(SlimLockTest, TtasModeSpinsAndRefusesSharedJoins) {
  SlimLock lk(SglImpl::kTtas);
  EXPECT_FALSE(lk.try_lock_shared());
  std::uint64_t guarded = 0;
  std::uint64_t wakeups = 0;  // per-thread sums merged under the lock itself
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters / 4; ++i) {
        const std::uint32_t w = lk.lock_update();
        ++guarded;
        wakeups += w;
        lk.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(guarded, static_cast<std::uint64_t>(kThreads) * (kIters / 4));
  EXPECT_EQ(wakeups, 0u);
  EXPECT_FALSE(lk.is_update_locked());
}

// OwnedGlobalLock adds owner identity on a separate word: inside the
// critical section the owner word names the holder, outside it reads
// kNoOwner, and the identity round-trips through the full SGL sequence
// (lock -> upgrade -> unlock) that the fall-back paths use.
TEST(OwnedGlobalLockTest, OwnerIdentityTracksHolder) {
  OwnedGlobalLock gl;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto tid = static_cast<std::uint32_t>(t);
      for (int i = 0; i < kIters / 4; ++i) {
        gl.lock(tid);
        EXPECT_TRUE(gl.is_locked());
        EXPECT_TRUE(gl.is_locked_by(tid));
        EXPECT_EQ(gl.owner_word(), tid);
        gl.upgrade();
        gl.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(gl.is_locked());
  EXPECT_EQ(gl.owner_word(), OwnedGlobalLock::kNoOwner);
}

}  // namespace
