// TPC-C edge cases: remote payments, by-last-name selection paths, ring
// wrap-around, history cursor behaviour, and delivery backlog accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "tpcc/db.hpp"
#include "tpcc/transactions.hpp"
#include "tpcc/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::tpcc;

struct DirectTx {
  template <typename T>
  T read(const T* addr) {
    return *addr;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    *addr = v;
  }
  void read_bytes(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);
  }
};

DbConfig two_wh() {
  DbConfig cfg;
  cfg.warehouses = 2;
  cfg.items = 100;
  cfg.customers_per_district = 30;
  cfg.initial_orders_per_district = 20;
  cfg.order_ring_bits = 6;  // 64-order ring: exercises wrap-around fast
  cfg.history_ring_bits = 6;
  return cfg;
}

TEST(TpccRemote, PaymentAtRemoteWarehouseUpdatesBothSides) {
  Db db(two_wh());
  DirectTx tx;
  PaymentInput in;
  in.w_id = 1;       // payment taken at warehouse 1...
  in.d_id = 3;
  in.c_w_id = 2;     // ...for a customer of warehouse 2
  in.c_d_id = 5;
  in.c_id = 7;
  in.amount = 999;
  const Money w1_before = db.warehouse(1).w_ytd;
  const Money c_before = db.customer(2, 5, 7).c_balance;
  payment(tx, db, in, 1);
  EXPECT_EQ(db.warehouse(1).w_ytd, w1_before + 999);  // home warehouse ytd
  EXPECT_EQ(db.customer(2, 5, 7).c_balance, c_before - 999);
  EXPECT_TRUE(db.check_ytd_consistency());
}

TEST(TpccRemote, NewOrderRemoteSupplyBumpsRemoteCnt) {
  Db db(two_wh());
  DirectTx tx;
  NewOrderInput in;
  in.w_id = 1;
  in.d_id = 1;
  in.c_id = 1;
  in.ol_cnt = 2;
  in.lines[0] = {.i_id = 5, .supply_w_id = 1, .quantity = 1};  // local
  in.lines[1] = {.i_id = 9, .supply_w_id = 2, .quantity = 1};  // remote
  new_order(tx, db, in, 1);
  EXPECT_EQ(db.stock(1, 5).s_remote_cnt, 0);
  EXPECT_EQ(db.stock(2, 9).s_remote_cnt, 1);
  const std::int64_t o_id = db.district(1, 1).d_next_o_id - 1;
  EXPECT_EQ(db.order_slot(1, 1, o_id).o_all_local, 0);
}

TEST(TpccByName, PaymentSelectsMedianOfGroup) {
  // With 30 customers all names are sequential (c_id - 1), so each group has
  // exactly one member and the median is that member.
  Db db(two_wh());
  DirectTx tx;
  PaymentInput in;
  in.w_id = in.c_w_id = 1;
  in.d_id = in.c_d_id = 1;
  in.c_id = 0;  // by last name
  in.c_last_num = 12;
  in.amount = 100;
  const Money before = db.customer(1, 1, 13).c_balance;
  payment(tx, db, in, 1);
  EXPECT_EQ(db.customer(1, 1, 13).c_balance, before - 100);
}

TEST(TpccByName, OrderStatusByNameFindsLatestOrder) {
  Db db(two_wh());
  DirectTx tx;
  NewOrderInput in;
  in.w_id = 1;
  in.d_id = 2;
  in.c_id = 4;  // last-name number 3
  in.ol_cnt = 5;
  for (int l = 0; l < in.ol_cnt; ++l) {
    in.lines[l] = {.i_id = l + 1, .supply_w_id = 1, .quantity = 1};
  }
  const auto r = new_order(tx, db, in, 9);
  const auto os = order_status(tx, db, 1, 2, 0, /*c_last_num=*/3);
  EXPECT_EQ(os.c_id, 4);
  EXPECT_EQ(os.o_id, r.o_id);
  EXPECT_EQ(os.lines, 5);
}

TEST(TpccRing, OrderRingWrapsWithoutCorruption) {
  Db db(two_wh());  // ring holds 64 orders; issue 200 to wrap three times
  DirectTx tx;
  si::util::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    NewOrderInput in = make_new_order_input(db, 1, rng);
    in.d_id = 1;
    new_order(tx, db, in, i);
    // Drain aggressively so the queue never outgrows the ring window.
    delivery_district(tx, db, 1, in.d_id, 1, i);
    delivery_district(tx, db, 1, 1, 1, i);
  }
  EXPECT_TRUE(db.check_order_id_consistency());
  const std::int64_t next = db.district(1, 1).d_next_o_id;
  EXPECT_EQ(next, 20 + 200 + 1);
  // The most recent ring window carries exactly the latest o_ids.
  for (std::int64_t o = next - db.order_ring_capacity(); o < next; ++o) {
    if (o >= 1) EXPECT_EQ(db.order_slot(1, 1, o).o_id, o);
  }
}

TEST(TpccRing, HistoryCursorWraps) {
  Db db(two_wh());  // history ring = 64 entries
  DirectTx tx;
  PaymentInput in;
  in.w_id = in.c_w_id = 1;
  in.d_id = in.c_d_id = 1;
  in.c_id = 1;
  for (int i = 0; i < 100; ++i) {
    in.amount = i + 1;
    payment(tx, db, in, i);
  }
  EXPECT_EQ(db.history_cursor(1).next, 100);
  // Slot for position 99 (= 99 & 63 = 35) holds the 100th payment.
  EXPECT_EQ(db.history_slot(1, 99).h_amount, 100);
}

TEST(TpccBacklog, QueueLengthTracksNewOrdersMinusDeliveries) {
  Db db(two_wh());
  DirectTx tx;
  const std::int64_t initial = db.total_new_order_queue_length();
  si::util::Xoshiro256 rng(8);
  int added = 0, removed = 0;
  for (int i = 0; i < 30; ++i) {
    NewOrderInput in = make_new_order_input(db, 1, rng);
    new_order(tx, db, in, i);
    ++added;
  }
  for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
    if (delivery_district(tx, db, 1, d, 2, 99) != 0) ++removed;
  }
  EXPECT_EQ(db.total_new_order_queue_length(), initial + added - removed);
}

TEST(TpccWorkload, RunSpecificTypesOnSiHtm) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = si::runtime::Backend::kSiHtm;
  cfg.max_threads = 4;
  si::runtime::Runtime rt(cfg);
  Workload w(two_wh(), Mix::standard(), 2);

  si::runtime::run_fixed_ops(rt, 2, 10, [&](int tid) {
    w.run(rt, tid, TxType::kNewOrder);
    w.run(rt, tid, TxType::kPayment);
    w.run(rt, tid, TxType::kOrderStatus);
    w.run(rt, tid, TxType::kDelivery);
    w.run(rt, tid, TxType::kStockLevel);
  });
  EXPECT_TRUE(w.db().check_ytd_consistency());
  EXPECT_TRUE(w.db().check_order_id_consistency());
  std::uint64_t commits = 0;
  for (const auto& st : rt.thread_stats()) commits += st.commits;
  EXPECT_EQ(commits, 2u * 10u * 5u);
}

TEST(TpccWorkload, TerminalsSpreadAcrossWarehouses) {
  Workload w(two_wh(), Mix::standard(), 4);
  // Terminals home-warehouse round-robin: tids 0,2 -> w1; 1,3 -> w2. We can
  // observe it through NEW-ORDER inputs hitting the right warehouse.
  si::runtime::RuntimeConfig cfg;
  cfg.backend = si::runtime::Backend::kSilo;
  cfg.max_threads = 4;
  si::runtime::Runtime rt(cfg);
  const std::int64_t w1_before = w.db().district(1, 1).d_next_o_id;
  (void)w1_before;
  si::runtime::run_fixed_ops(rt, 4, 5, [&](int tid) {
    w.run(rt, tid, TxType::kNewOrder);
  });
  std::int64_t issued_w1 = 0, issued_w2 = 0;
  for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
    issued_w1 += w.db().district(1, d).d_next_o_id - 21;
    issued_w2 += w.db().district(2, d).d_next_o_id - 21;
  }
  EXPECT_EQ(issued_w1, 10);  // two terminals x five orders each
  EXPECT_EQ(issued_w2, 10);
}

}  // namespace
