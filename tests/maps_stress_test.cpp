// Concurrent stress for the lock-based map baselines (runs under TSan in
// CI): hand-over-hand / crabbing and the coarse global lock, checked by
// conservation accounting and post-quiescence structure invariants.
//
// The transactional (Runtime) backends are stressed separately by
// maps_property_test.cpp; this suite exists because the fine-grained paths
// have their own deadlock-freedom and memory-reclamation arguments
// (skiplist: nondecreasing key order; BST/B+-tree: tree-edge crabbing;
// immediate pool reuse under full predecessor locking) that only real
// concurrency can falsify.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/locked.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "maps/workload.hpp"
#include "util/rng.hpp"

namespace {

using si::maps::LockedMap;
using si::maps::LockMode;
using si::maps::RangeEntry;

#if defined(__SANITIZE_THREAD__)
#define SI_MAPS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SI_MAPS_TSAN 1
#endif
#endif

#ifdef SI_MAPS_TSAN
constexpr std::uint64_t kOpsPerThread = 4000;  // TSan is ~20x slower
#else
constexpr std::uint64_t kOpsPerThread = 20000;
#endif
constexpr int kThreads = 6;
constexpr std::uint64_t kKeySpace = 512;

template <typename Map>
void stress(LockMode mode, std::uint64_t seed) {
  LockedMap<Map> locked(mode);
  // Pools are hoisted out of the worker threads: their arenas own the node
  // memory that stays linked into the shared map, so they must outlive the
  // post-join verification below (a thread-local pool would free the nodes
  // at thread exit and turn the final dump into a use-after-free).
  std::vector<typename Map::Pool> pools(kThreads);
  // Per-thread net insert balance lets us check conservation at the end.
  std::vector<std::int64_t> net(kThreads, 0);
  std::vector<std::uint64_t> scans(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      si::util::Xoshiro256 rng(seed ^ (0x9E37ULL * (t + 1)));
      typename Map::ScratchT scratch(pools[t]);
      RangeEntry buf[64];
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t d = rng.below(100);
        const std::uint64_t key = 1 + rng.below(kKeySpace);
        if (d < 20) {
          std::uint64_t v = 0;
          if (locked.get(key, &v)) ASSERT_EQ(v, key * 3 + 1);
        } else if (d < 35) {
          const std::size_t n = locked.range(key, key + 31, buf, 64);
          scans[t] += n;
          std::uint64_t prev = 0;
          for (std::size_t j = 0; j < n; ++j) {
            ASSERT_TRUE(j == 0 || buf[j].key > prev) << "unsorted range hit";
            ASSERT_GE(buf[j].key, key);
            ASSERT_LE(buf[j].key, key + 31);
            ASSERT_EQ(buf[j].value, buf[j].key * 3 + 1);
            prev = buf[j].key;
          }
        } else if (d < 70) {
          if (locked.put(key, key * 3 + 1, scratch)) ++net[t];
        } else {
          if (locked.del(key, scratch)) --net[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::int64_t expected = 0;
  for (const auto n : net) expected += n;
  EXPECT_EQ(static_cast<std::int64_t>(si::maps::map_count(locked.map())),
            expected);
  EXPECT_TRUE(locked.map().structure_ok());
  const auto dump = si::maps::map_dump(locked.map());
  for (const auto& e : dump) EXPECT_EQ(e.value, e.key * 3 + 1);
}

TEST(MapsStress, SkiplistFine) { stress<si::maps::SkipList>(LockMode::kFine, 1); }
TEST(MapsStress, SkiplistCoarse) {
  stress<si::maps::SkipList>(LockMode::kCoarse, 2);
}
TEST(MapsStress, BstFine) { stress<si::maps::Bst>(LockMode::kFine, 3); }
TEST(MapsStress, BstCoarse) { stress<si::maps::Bst>(LockMode::kCoarse, 4); }
TEST(MapsStress, BtreeFine) { stress<si::maps::Btree>(LockMode::kFine, 5); }
TEST(MapsStress, BtreeCoarse) { stress<si::maps::Btree>(LockMode::kCoarse, 6); }

// The locked workload driver itself (used by bench_maps for baseline rows)
// must survive a short multi-threaded run and keep its op accounting.
TEST(MapsStress, LockedWorkloadDriver) {
  si::maps::MapWorkloadConfig cfg;
  cfg.elements = 500;
  cfg.seed = 99;
  for (const LockMode mode : {LockMode::kCoarse, LockMode::kFine}) {
    si::maps::LockedWorkload<si::maps::SkipList> w(cfg, mode, kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int i = 0; i < 2000; ++i) w.step(t);
      });
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(w.total_ops(), static_cast<std::uint64_t>(kThreads) * 2000);
    EXPECT_TRUE(w.map().map().structure_ok());
  }
}

}  // namespace
