// Unit suite for the concurrent-map zoo (src/maps/): each structure against
// a std::map oracle through DirectCC, through both lock-based baselines, and
// through every real-thread Runtime backend single-threaded — the base
// correctness layer under the property/stress/fuzz suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/locked.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace {

using si::maps::Bst;
using si::maps::Btree;
using si::maps::DirectCC;
using si::maps::LockedMap;
using si::maps::LockMode;
using si::maps::RangeEntry;
using si::maps::SkipList;

constexpr std::size_t kRangeCap = 64;

// One scripted operation; results are compared against std::map.
struct Op {
  enum Kind { kGet, kPut, kDel, kRange } kind = kGet;
  std::uint64_t key = 0;
  std::uint64_t val = 0;
  std::uint64_t hi = 0;
};

std::vector<Op> make_ops(std::uint64_t seed, std::size_t n,
                         std::uint64_t key_space) {
  si::util::Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    const std::uint64_t d = rng.below(100);
    op.key = 1 + rng.below(key_space);
    op.val = rng();
    if (d < 30) {
      op.kind = Op::kGet;
    } else if (d < 60) {
      op.kind = Op::kPut;
    } else if (d < 85) {
      op.kind = Op::kDel;
    } else {
      op.kind = Op::kRange;
      op.hi = op.key + rng.below(40);
    }
    ops.push_back(op);
  }
  return ops;
}

/// Applies `op` to the oracle, returning the value the map API must produce.
std::uint64_t oracle_apply(std::map<std::uint64_t, std::uint64_t>& oracle,
                           const Op& op, std::vector<RangeEntry>* hits) {
  switch (op.kind) {
    case Op::kGet: {
      auto it = oracle.find(op.key);
      return it == oracle.end() ? 0 : 1 + it->second;
    }
    case Op::kPut: {
      const bool fresh = oracle.insert_or_assign(op.key, op.val).second;
      return fresh ? 1 : 0;
    }
    case Op::kDel:
      return oracle.erase(op.key);
    case Op::kRange: {
      hits->clear();
      for (auto it = oracle.lower_bound(op.key);
           it != oracle.end() && it->first <= op.hi && hits->size() < kRangeCap;
           ++it)
        hits->push_back({it->first, it->second});
      return hits->size();
    }
  }
  return 0;
}

/// Runs the script through the map_* drivers on any CC, checking every
/// result against the oracle.
template <typename Map, typename CC>
void run_script_against_oracle(Map& map, CC& cc,
                               typename Map::ScratchT& scratch,
                               const std::vector<Op>& ops) {
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<RangeEntry> want;
  RangeEntry got[kRangeCap];
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const std::uint64_t expect = oracle_apply(oracle, op, &want);
    switch (op.kind) {
      case Op::kGet: {
        std::uint64_t v = 0;
        const bool found = map_get(map, cc, op.key, &v);
        ASSERT_EQ(found ? 1 + v : 0, expect) << "op " << i;
        break;
      }
      case Op::kPut:
        ASSERT_EQ(map_put(map, cc, op.key, op.val, scratch) ? 1u : 0u, expect)
            << "op " << i;
        break;
      case Op::kDel:
        ASSERT_EQ(map_del(map, cc, op.key, scratch) ? 1u : 0u, expect)
            << "op " << i;
        break;
      case Op::kRange: {
        const std::size_t n = map_range(map, cc, op.key, op.hi, got, kRangeCap);
        ASSERT_EQ(n, want.size()) << "op " << i;
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(got[j].key, want[j].key) << "op " << i << " hit " << j;
          EXPECT_EQ(got[j].value, want[j].value) << "op " << i << " hit " << j;
        }
        break;
      }
    }
  }
  // Final state: ordered dump equals the oracle, structure invariants hold.
  const auto dump = si::maps::map_dump(map);
  ASSERT_EQ(dump.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < dump.size(); ++i, ++it) {
    EXPECT_EQ(dump[i].key, it->first);
    EXPECT_EQ(dump[i].value, it->second);
  }
  EXPECT_TRUE(map.structure_ok());
}

template <typename MapT>
class MapsTypedTest : public ::testing::Test {};

using MapTypes = ::testing::Types<SkipList, Bst, Btree>;
TYPED_TEST_SUITE(MapsTypedTest, MapTypes);

TYPED_TEST(MapsTypedTest, DirectMatchesOracle) {
  TypeParam map;
  typename TypeParam::Pool pool;
  typename TypeParam::ScratchT scratch(pool);
  DirectCC cc;
  run_script_against_oracle(map, cc, scratch,
                            make_ops(0xD1CE, 4000, /*key_space=*/256));
}

TYPED_TEST(MapsTypedTest, SmallKeySpaceChurn) {
  // key_space 8 forces constant node reuse (retire/advance cycling) and, for
  // the B+-tree, repeated splits over underfull leaves.
  TypeParam map;
  typename TypeParam::Pool pool;
  typename TypeParam::ScratchT scratch(pool);
  DirectCC cc;
  run_script_against_oracle(map, cc, scratch,
                            make_ops(0xBEEF, 3000, /*key_space=*/8));
}

TYPED_TEST(MapsTypedTest, LockedBaselinesMatchOracle) {
  for (const LockMode mode : {LockMode::kCoarse, LockMode::kFine}) {
    LockedMap<TypeParam> locked(mode);
    typename TypeParam::Pool pool;
    typename TypeParam::ScratchT scratch(pool);
    std::map<std::uint64_t, std::uint64_t> oracle;
    std::vector<RangeEntry> want;
    RangeEntry got[kRangeCap];
    const auto ops = make_ops(0xF00D ^ static_cast<int>(mode), 3000, 128);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      const std::uint64_t expect = oracle_apply(oracle, op, &want);
      switch (op.kind) {
        case Op::kGet: {
          std::uint64_t v = 0;
          const bool found = locked.get(op.key, &v);
          ASSERT_EQ(found ? 1 + v : 0, expect) << "op " << i;
          break;
        }
        case Op::kPut:
          ASSERT_EQ(locked.put(op.key, op.val, scratch) ? 1u : 0u, expect);
          break;
        case Op::kDel:
          ASSERT_EQ(locked.del(op.key, scratch) ? 1u : 0u, expect);
          break;
        case Op::kRange: {
          const std::size_t n = locked.range(op.key, op.hi, got, kRangeCap);
          ASSERT_EQ(n, want.size()) << "op " << i;
          for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(got[j].key, want[j].key);
          break;
        }
      }
    }
    EXPECT_TRUE(locked.map().structure_ok());
  }
}

TYPED_TEST(MapsTypedTest, RunsOnEveryRuntimeBackend) {
  // Single-threaded on the real substrate: every protocol must execute the
  // structure's transactions and agree with the oracle. This is the "all
  // four protocols (plus the raw-ROT ablation) run the zoo unchanged" claim
  // at the unit level; multi-threaded coverage lives in the property test.
  using si::runtime::Backend;
  for (const Backend b : {Backend::kSiHtm, Backend::kHtm, Backend::kP8tm,
                          Backend::kSilo, Backend::kRawRot}) {
    SCOPED_TRACE(std::string(to_string(b)));
    si::runtime::Runtime rt({.backend = b, .max_threads = 4});
    rt.register_thread(0);
    TypeParam map;
    typename TypeParam::Pool pool;
    typename TypeParam::ScratchT scratch(pool);
    run_script_against_oracle(map, rt, scratch,
                              make_ops(0xACE0 + static_cast<int>(b), 1200, 96));
  }
}

TEST(SkipListTest, DeterministicTowers) {
  // Heights are a pure function of the key and respect the level cap.
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const int h = SkipList::height_of(k);
    ASSERT_GE(h, 1);
    ASSERT_LE(h, SkipList::kMaxLevel);
    ASSERT_EQ(h, SkipList::height_of(k));
  }
  // A geometric(1/2) distribution: roughly half the keys have height 1.
  int ones = 0;
  for (std::uint64_t k = 0; k < 4096; ++k)
    if (SkipList::height_of(k) == 1) ++ones;
  EXPECT_GT(ones, 4096 / 3);
  EXPECT_LT(ones, 2 * 4096 / 3);
}

TEST(BtreeTest, AscendingInsertSplitsStayBalanced) {
  Btree map;
  Btree::Pool pool;
  Btree::ScratchT scratch(pool);
  DirectCC cc;
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t k = 1; k <= kN; ++k)
    ASSERT_TRUE(map_put(map, cc, k, k * 7, scratch));
  EXPECT_TRUE(map.structure_ok());
  const auto dump = si::maps::map_dump(map);
  ASSERT_EQ(dump.size(), kN);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    EXPECT_EQ(dump[k - 1].key, k);
    EXPECT_EQ(dump[k - 1].value, k * 7);
  }
  // Deleting everything leaves empty-but-valid leaves behind.
  for (std::uint64_t k = 1; k <= kN; ++k)
    ASSERT_TRUE(map_del(map, cc, k, scratch));
  EXPECT_TRUE(map.structure_ok());
  EXPECT_EQ(si::maps::map_count(map), 0u);
}

TEST(BstTest, TwoChildRemovalSplicesSuccessor) {
  Bst map;
  Bst::Pool pool;
  Bst::ScratchT scratch(pool);
  DirectCC cc;
  // Build a deliberately bushy shape, then remove interior nodes.
  for (const std::uint64_t k : {50, 25, 75, 12, 37, 62, 87, 31, 43, 56, 68})
    ASSERT_TRUE(map_put(map, cc, k, k, scratch));
  ASSERT_TRUE(map_del(map, cc, 50, scratch));  // root, two children
  ASSERT_TRUE(map_del(map, cc, 25, scratch));  // interior, two children
  EXPECT_TRUE(map.structure_ok());
  const auto dump = si::maps::map_dump(map);
  const std::vector<std::uint64_t> want{12, 31, 37, 43, 56, 62, 68, 75, 87};
  ASSERT_EQ(dump.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(dump[i].key, want[i]);
}

}  // namespace
