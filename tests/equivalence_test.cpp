// Cross-substrate equivalence suite (DESIGN.md section 5): every protocol
// core under src/protocol/ is one transcription instantiated over two
// substrates, so a deterministic single-threaded workload must produce the
// *same* commit/abort accounting on real threads (RealSubstrate) and inside
// the discrete-event simulator (SimSubstrate), and both recorded histories
// must be admissible under Snapshot Isolation.
//
// Single-threaded on purpose: with one thread there are no data conflicts
// and no scheduling freedom, so any divergence in counts is a divergence in
// the *protocol logic itself* (e.g. a capacity abort taken on one substrate
// but not the other) — exactly the regression class this suite guards
// against. Multi-threaded agreement on invariants is covered by sim_test.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "baselines/htm_sgl.hpp"
#include "baselines/p8tm.hpp"
#include "baselines/raw_rot.hpp"
#include "baselines/silo.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using si::util::AbortCause;
using si::util::kLineSize;
using si::util::ThreadStats;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

constexpr std::size_t kCells = 96;
// One more line than a POWER8 TMCAM holds (64 per core): a transaction that
// writes this many distinct lines must raise a capacity abort and fall back
// to the SGL on both substrates.
constexpr std::size_t kStressLines = 65;
constexpr int kSteps = 160;

// --- deterministic op script -------------------------------------------------
//
// The workload is generated *up front* from a seed into a flat script, and
// the transaction bodies draw only from the script. This keeps retried
// bodies byte-identical (a live RNG inside a body would advance differently
// depending on how often each substrate retries) and guarantees the real and
// sim runs issue exactly the same logical accesses.

enum class OpKind { kRoScan, kUpdate, kBigWrite };

struct Op {
  OpKind kind = OpKind::kRoScan;
  std::array<std::uint32_t, 4> idx{};
  std::uint64_t delta = 0;
};

std::vector<Op> make_script(std::uint64_t seed, bool with_capacity_stress) {
  si::util::Xoshiro256 rng(seed);
  std::vector<Op> script;
  script.reserve(kSteps);
  for (int i = 0; i < kSteps; ++i) {
    Op op;
    const std::uint64_t d = rng.below(100);
    if (d < 40) {
      op.kind = OpKind::kRoScan;
    } else if (d < 95 || !with_capacity_stress) {
      op.kind = OpKind::kUpdate;
    } else {
      op.kind = OpKind::kBigWrite;
    }
    for (auto& ix : op.idx) ix = static_cast<std::uint32_t>(rng.below(kCells));
    op.delta = rng.uniform(1, 1000);
    script.push_back(op);
  }
  return script;
}

template <typename Tx>
void run_op(Tx& tx, const Op& op, std::vector<Cell>& cells) {
  switch (op.kind) {
    case OpKind::kRoScan: {
      std::uint64_t sum = 0;
      for (auto ix : op.idx) sum += tx.read(&cells[ix].v);
      (void)sum;  // no effects outside the transaction: bodies may re-run
      break;
    }
    case OpKind::kUpdate: {
      for (auto ix : op.idx) {
        const std::uint64_t v = tx.read(&cells[ix].v);
        tx.write(&cells[ix].v, v + op.delta);
      }
      break;
    }
    case OpKind::kBigWrite: {
      for (std::size_t j = 0; j < kStressLines; ++j) {
        const std::size_t ix = (op.idx[0] + j) % kCells;
        tx.write(&cells[ix].v, op.delta + j);
      }
      break;
    }
  }
}

// --- runners -----------------------------------------------------------------

struct RunResult {
  ThreadStats stats{};
  std::vector<Cell> cells;
  std::vector<si::check::Event> history;
};

void seed_cells(std::vector<Cell>& cells, si::check::HistoryRecorder& rec) {
  cells.assign(kCells, Cell{});
  for (std::size_t i = 0; i < kCells; ++i) {
    cells[i].v = i;
    rec.init(&cells[i].v, sizeof(cells[i].v), &cells[i].v);
  }
}

/// Runs the script on a real-thread backend, single-threaded (so the
/// recorded history is exact; see check/history.hpp).
template <typename Backend, typename MakeBackend>
RunResult run_real(const std::vector<Op>& script, MakeBackend&& make) {
  RunResult out;
  si::check::HistoryRecorder rec(8);
  seed_cells(out.cells, rec);
  Backend be = make(rec);
  be.register_thread(0);
  for (const auto& op : script) {
    be.execute(op.kind == OpKind::kRoScan,
               [&](auto& tx) { run_op(tx, op, out.cells); });
  }
  out.stats = be.thread_stats()[0];
  out.history = rec.merged();
  return out;
}

/// Runs the same script on the matching sim backend inside a one-thread
/// virtual machine.
template <typename Backend, typename MakeBackend>
RunResult run_sim(const std::vector<Op>& script, MakeBackend&& make) {
  RunResult out;
  si::check::HistoryRecorder rec(8);
  seed_cells(out.cells, rec);
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, 1);
  Backend be = make(eng, rec);
  eng.run(1e9, [&](int) {
    for (const auto& op : script) {
      be.execute(op.kind == OpKind::kRoScan,
                 [&](auto& tx) { run_op(tx, op, out.cells); });
    }
    eng.wait(1e12);  // past the deadline: the script runs exactly once
  });
  out.stats = be.thread_stats()[0];
  out.history = rec.merged();
  return out;
}

void expect_equivalent(const RunResult& real, const RunResult& sim) {
  EXPECT_EQ(real.stats.commits, sim.stats.commits);
  EXPECT_EQ(real.stats.ro_commits, sim.stats.ro_commits);
  EXPECT_EQ(real.stats.sgl_commits, sim.stats.sgl_commits);
  for (int c = 0; c < static_cast<int>(AbortCause::kCauseCount_); ++c) {
    EXPECT_EQ(real.stats.aborts_by_cause[c], sim.stats.aborts_by_cause[c])
        << "abort cause: " << to_string(static_cast<AbortCause>(c));
  }
  ASSERT_EQ(real.cells.size(), sim.cells.size());
  for (std::size_t i = 0; i < real.cells.size(); ++i) {
    EXPECT_EQ(real.cells[i].v, sim.cells[i].v) << "cell " << i;
  }
  for (const auto* h : {&real.history, &sim.history}) {
    const auto res = si::check::verify_si(*h);
    EXPECT_TRUE(res.ok()) << si::check::describe(res);
    EXPECT_EQ(res.committed, real.stats.commits);
  }
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, SiHtm) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
    return si::sim::SimSiHtm(eng, /*retries=*/10,
                             /*straggler_kill_after_ns=*/0, &rec);
  });
  expect_equivalent(real, sim);
  // The stressor must actually have exercised the capacity path.
  EXPECT_GT(real.stats.sgl_commits, 0u);
  EXPECT_GT(
      real.stats.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST_P(EquivalenceTest, SiHtmFastPathToggle) {
  // The owned-line fast path is a pure shortcut: with it force-disabled the
  // same script must produce identical accounting and final state, and only
  // the enabled run may report ownership-cache hits.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto fast = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  si::p8::HtmConfig slow_htm;
  slow_htm.owned_line_fast_path = false;
  const auto slow = run_real<si::sihtm::SiHtm>(script, [&](auto& rec) {
    return si::sihtm::SiHtm(
        {.htm = slow_htm, .max_threads = 8, .recorder = &rec});
  });
  expect_equivalent(fast, slow);
  EXPECT_GT(fast.stats.fast_path.hits, 0u);
  EXPECT_EQ(slow.stats.fast_path.hits, 0u);
}

TEST_P(EquivalenceTest, SiHtmTracingOnOff) {
  // Obs hooks are pure bookkeeping (they never wait or branch the protocol),
  // so attaching a tracer and metrics must not change commits, abort causes
  // or final memory — on either substrate.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);

  si::obs::Tracer tracer(8);
  si::obs::Metrics metrics(8);
  const si::obs::ObsConfig obs{&tracer, &metrics};
  const auto traced = run_real<si::sihtm::SiHtm>(script, [&](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec, .obs = obs});
  });
  const auto plain = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  expect_equivalent(traced, plain);
  if (si::obs::kTraceEnabled) {  // stubs record nothing under SI_TRACE=0
    EXPECT_GT(tracer.emitted(0), 0u);
    EXPECT_EQ(metrics.snapshot().commit_latency.count(), traced.stats.commits);
  }

  si::obs::Tracer sim_tracer(1);
  const auto sim_traced =
      run_sim<si::sim::SimSiHtm>(script, [&](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec,
                                 si::obs::ObsConfig{&sim_tracer, nullptr});
      });
  const auto sim_plain =
      run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec);
      });
  expect_equivalent(sim_traced, sim_plain);
  if (si::obs::kTraceEnabled) EXPECT_GT(sim_tracer.emitted(0), 0u);
}

TEST_P(EquivalenceTest, HtmSgl) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::HtmSgl>(script, [](auto& rec) {
    return si::baselines::HtmSgl({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimHtmSgl>(script, [](auto& eng, auto& rec) {
    return si::sim::SimHtmSgl(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_GT(real.stats.sgl_commits, 0u);
}

TEST_P(EquivalenceTest, P8tm) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::P8tm>(script, [](auto& rec) {
    return si::baselines::P8tm({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimP8tm>(script, [](auto& eng, auto& rec) {
    return si::sim::SimP8tm(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_GT(real.stats.sgl_commits, 0u);
}

TEST_P(EquivalenceTest, Silo) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::Silo>(script, [](auto& rec) {
    return si::baselines::Silo({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimSilo>(script, [](auto& eng, auto& rec) {
    return si::sim::SimSilo(eng, &rec);
  });
  expect_equivalent(real, sim);
  // Silo buffers writes in software: no capacity aborts, ever.
  EXPECT_EQ(real.stats.sgl_commits, 0u);
  EXPECT_EQ(
      real.stats.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST_P(EquivalenceTest, RawRot) {
  // No capacity stressor: raw-ROT has no SGL fall-back, so an over-capacity
  // transaction would retry (and capacity-abort) forever by design.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/false);
  const auto real = run_real<si::baselines::RawRot>(script, [](auto& rec) {
    return si::baselines::RawRot({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimRawRot>(script, [](auto& eng, auto& rec) {
    return si::sim::SimRawRot(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_EQ(real.stats.sgl_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 20260807u));

}  // namespace
