// Cross-substrate equivalence suite (DESIGN.md section 5): every protocol
// core under src/protocol/ is one transcription instantiated over two
// substrates, so a deterministic single-threaded workload must produce the
// *same* commit/abort accounting on real threads (RealSubstrate) and inside
// the discrete-event simulator (SimSubstrate), and both recorded histories
// must be admissible under Snapshot Isolation.
//
// Single-threaded on purpose: with one thread there are no data conflicts
// and no scheduling freedom, so any divergence in counts is a divergence in
// the *protocol logic itself* (e.g. a capacity abort taken on one substrate
// but not the other) — exactly the regression class this suite guards
// against. Multi-threaded agreement on invariants is covered by sim_test.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "baselines/htm_sgl.hpp"
#include "baselines/p8tm.hpp"
#include "baselines/raw_rot.hpp"
#include "baselines/silo.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"
#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using si::util::AbortCause;
using si::util::kLineSize;
using si::util::ThreadStats;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

constexpr std::size_t kCells = 96;
// One more line than a POWER8 TMCAM holds (64 per core): a transaction that
// writes this many distinct lines must raise a capacity abort and fall back
// to the SGL on both substrates.
constexpr std::size_t kStressLines = 65;
constexpr int kSteps = 160;

// --- deterministic op script -------------------------------------------------
//
// The workload is generated *up front* from a seed into a flat script, and
// the transaction bodies draw only from the script. This keeps retried
// bodies byte-identical (a live RNG inside a body would advance differently
// depending on how often each substrate retries) and guarantees the real and
// sim runs issue exactly the same logical accesses.

enum class OpKind { kRoScan, kUpdate, kBigWrite };

struct Op {
  OpKind kind = OpKind::kRoScan;
  std::array<std::uint32_t, 4> idx{};
  std::uint64_t delta = 0;
};

std::vector<Op> make_script(std::uint64_t seed, bool with_capacity_stress) {
  si::util::Xoshiro256 rng(seed);
  std::vector<Op> script;
  script.reserve(kSteps);
  for (int i = 0; i < kSteps; ++i) {
    Op op;
    const std::uint64_t d = rng.below(100);
    if (d < 40) {
      op.kind = OpKind::kRoScan;
    } else if (d < 95 || !with_capacity_stress) {
      op.kind = OpKind::kUpdate;
    } else {
      op.kind = OpKind::kBigWrite;
    }
    for (auto& ix : op.idx) ix = static_cast<std::uint32_t>(rng.below(kCells));
    op.delta = rng.uniform(1, 1000);
    script.push_back(op);
  }
  return script;
}

template <typename Tx>
void run_op(Tx& tx, const Op& op, std::vector<Cell>& cells) {
  switch (op.kind) {
    case OpKind::kRoScan: {
      std::uint64_t sum = 0;
      for (auto ix : op.idx) sum += tx.read(&cells[ix].v);
      (void)sum;  // no effects outside the transaction: bodies may re-run
      break;
    }
    case OpKind::kUpdate: {
      for (auto ix : op.idx) {
        const std::uint64_t v = tx.read(&cells[ix].v);
        tx.write(&cells[ix].v, v + op.delta);
      }
      break;
    }
    case OpKind::kBigWrite: {
      for (std::size_t j = 0; j < kStressLines; ++j) {
        const std::size_t ix = (op.idx[0] + j) % kCells;
        tx.write(&cells[ix].v, op.delta + j);
      }
      break;
    }
  }
}

// --- runners -----------------------------------------------------------------

struct RunResult {
  ThreadStats stats{};
  std::vector<Cell> cells;
  std::vector<si::check::Event> history;
};

void seed_cells(std::vector<Cell>& cells, si::check::HistoryRecorder& rec) {
  cells.assign(kCells, Cell{});
  for (std::size_t i = 0; i < kCells; ++i) {
    cells[i].v = i;
    rec.init(&cells[i].v, sizeof(cells[i].v), &cells[i].v);
  }
}

/// Runs the script on a real-thread backend, single-threaded (so the
/// recorded history is exact; see check/history.hpp).
template <typename Backend, typename MakeBackend>
RunResult run_real(const std::vector<Op>& script, MakeBackend&& make) {
  RunResult out;
  si::check::HistoryRecorder rec(8);
  seed_cells(out.cells, rec);
  Backend be = make(rec);
  be.register_thread(0);
  for (const auto& op : script) {
    be.execute(op.kind == OpKind::kRoScan,
               [&](auto& tx) { run_op(tx, op, out.cells); });
  }
  out.stats = be.thread_stats()[0];
  out.history = rec.merged();
  return out;
}

/// Runs the same script on the matching sim backend inside a one-thread
/// virtual machine.
template <typename Backend, typename MakeBackend>
RunResult run_sim(const std::vector<Op>& script, MakeBackend&& make) {
  RunResult out;
  si::check::HistoryRecorder rec(8);
  seed_cells(out.cells, rec);
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, 1);
  Backend be = make(eng, rec);
  eng.run(1e9, [&](int) {
    for (const auto& op : script) {
      be.execute(op.kind == OpKind::kRoScan,
                 [&](auto& tx) { run_op(tx, op, out.cells); });
    }
    eng.wait(1e12);  // past the deadline: the script runs exactly once
  });
  out.stats = be.thread_stats()[0];
  out.history = rec.merged();
  return out;
}

void expect_equivalent(const RunResult& real, const RunResult& sim) {
  EXPECT_EQ(real.stats.commits, sim.stats.commits);
  EXPECT_EQ(real.stats.ro_commits, sim.stats.ro_commits);
  EXPECT_EQ(real.stats.sgl_commits, sim.stats.sgl_commits);
  for (int c = 0; c < static_cast<int>(AbortCause::kCauseCount_); ++c) {
    EXPECT_EQ(real.stats.aborts_by_cause[c], sim.stats.aborts_by_cause[c])
        << "abort cause: " << to_string(static_cast<AbortCause>(c));
  }
  ASSERT_EQ(real.cells.size(), sim.cells.size());
  for (std::size_t i = 0; i < real.cells.size(); ++i) {
    EXPECT_EQ(real.cells[i].v, sim.cells[i].v) << "cell " << i;
  }
  for (const auto* h : {&real.history, &sim.history}) {
    const auto res = si::check::verify_si(*h);
    EXPECT_TRUE(res.ok()) << si::check::describe(res);
    EXPECT_EQ(res.committed, real.stats.commits);
  }
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, SiHtm) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
    return si::sim::SimSiHtm(eng, /*retries=*/10,
                             /*straggler_kill_after_ns=*/0, &rec);
  });
  expect_equivalent(real, sim);
  // The stressor must actually have exercised the capacity path.
  EXPECT_GT(real.stats.sgl_commits, 0u);
  EXPECT_GT(
      real.stats.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST_P(EquivalenceTest, SiHtmFastPathToggle) {
  // The owned-line fast path is a pure shortcut: with it force-disabled the
  // same script must produce identical accounting and final state, and only
  // the enabled run may report ownership-cache hits.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto fast = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  si::p8::HtmConfig slow_htm;
  slow_htm.owned_line_fast_path = false;
  const auto slow = run_real<si::sihtm::SiHtm>(script, [&](auto& rec) {
    return si::sihtm::SiHtm(
        {.htm = slow_htm, .max_threads = 8, .recorder = &rec});
  });
  expect_equivalent(fast, slow);
  EXPECT_GT(fast.stats.fast_path.hits, 0u);
  EXPECT_EQ(slow.stats.fast_path.hits, 0u);
}

TEST_P(EquivalenceTest, SiHtmTracingOnOff) {
  // Obs hooks are pure bookkeeping (they never wait or branch the protocol),
  // so attaching a tracer and metrics must not change commits, abort causes
  // or final memory — on either substrate.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);

  si::obs::Tracer tracer(8);
  si::obs::Metrics metrics(8);
  const si::obs::ObsConfig obs{&tracer, &metrics};
  const auto traced = run_real<si::sihtm::SiHtm>(script, [&](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec, .obs = obs});
  });
  const auto plain = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
  });
  expect_equivalent(traced, plain);
  if (si::obs::kTraceEnabled) {  // stubs record nothing under SI_TRACE=0
    EXPECT_GT(tracer.emitted(0), 0u);
    EXPECT_EQ(metrics.snapshot().commit_latency.count(), traced.stats.commits);
  }

  si::obs::Tracer sim_tracer(1);
  const auto sim_traced =
      run_sim<si::sim::SimSiHtm>(script, [&](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec,
                                 si::obs::ObsConfig{&sim_tracer, nullptr});
      });
  const auto sim_plain =
      run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec);
      });
  expect_equivalent(sim_traced, sim_plain);
  if (si::obs::kTraceEnabled) EXPECT_GT(sim_tracer.emitted(0), 0u);
}

TEST_P(EquivalenceTest, HtmSgl) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::HtmSgl>(script, [](auto& rec) {
    return si::baselines::HtmSgl({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimHtmSgl>(script, [](auto& eng, auto& rec) {
    return si::sim::SimHtmSgl(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_GT(real.stats.sgl_commits, 0u);
}

TEST_P(EquivalenceTest, P8tm) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::P8tm>(script, [](auto& rec) {
    return si::baselines::P8tm({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimP8tm>(script, [](auto& eng, auto& rec) {
    return si::sim::SimP8tm(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_GT(real.stats.sgl_commits, 0u);
}

TEST_P(EquivalenceTest, Silo) {
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto real = run_real<si::baselines::Silo>(script, [](auto& rec) {
    return si::baselines::Silo({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimSilo>(script, [](auto& eng, auto& rec) {
    return si::sim::SimSilo(eng, &rec);
  });
  expect_equivalent(real, sim);
  // Silo buffers writes in software: no capacity aborts, ever.
  EXPECT_EQ(real.stats.sgl_commits, 0u);
  EXPECT_EQ(
      real.stats.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST_P(EquivalenceTest, RawRot) {
  // No capacity stressor: raw-ROT has no SGL fall-back, so an over-capacity
  // transaction would retry (and capacity-abort) forever by design.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/false);
  const auto real = run_real<si::baselines::RawRot>(script, [](auto& rec) {
    return si::baselines::RawRot({.max_threads = 8, .recorder = &rec});
  });
  const auto sim = run_sim<si::sim::SimRawRot>(script, [](auto& eng, auto& rec) {
    return si::sim::SimRawRot(eng, /*retries=*/10, &rec);
  });
  expect_equivalent(real, sim);
  EXPECT_EQ(real.stats.sgl_commits, 0u);
}

TEST_P(EquivalenceTest, SlimVsTtasSgl) {
  // The slim lock replaces the seed's TTAS spin under the same SGL contract
  // (DESIGN.md section 11). Single-threaded there is never a contended
  // acquisition and never a shared-mode join, so the two implementations
  // must be indistinguishable — same accounting, same final memory, same
  // SI-admissible history — on the real substrate and in the simulator.
  const auto script = make_script(GetParam(), /*with_capacity_stress=*/true);
  const auto slim = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8,
                             .recorder = &rec,
                             .sgl_impl = si::util::SglImpl::kSlim});
  });
  const auto ttas = run_real<si::sihtm::SiHtm>(script, [](auto& rec) {
    return si::sihtm::SiHtm({.max_threads = 8,
                             .recorder = &rec,
                             .sgl_impl = si::util::SglImpl::kTtas,
                             .sgl_shared_ro = false});
  });
  expect_equivalent(slim, ttas);
  EXPECT_GT(slim.stats.sgl_commits, 0u);  // the SGL path actually ran
  EXPECT_EQ(slim.stats.sgl_sleep_wakeups, 0u);  // uncontended: no parking
  EXPECT_EQ(ttas.stats.sgl_sleep_wakeups, 0u);  // TTAS never parks

  const auto sim_slim =
      run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kSlim,
                                 /*sgl_shared_ro=*/true);
      });
  const auto sim_ttas =
      run_sim<si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kTtas,
                                 /*sgl_shared_ro=*/false);
      });
  expect_equivalent(sim_slim, sim_ttas);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 20260807u));

// --- multi-threaded slim-lock cases (sim: deterministic schedules) ----------

/// Per-thread scripted run on an 8-thread simulated machine. Each thread
/// executes its own `make_script(seed ^ tid)` script once; the engine's
/// deterministic scheduling makes the whole run a pure function of the
/// configuration, which is what lets the test below compare entire runs.
template <typename MakeBackend>
RunResult run_sim_mt(std::uint64_t seed, int threads, MakeBackend&& make,
                     si::util::ThreadStats* totals = nullptr,
                     double* elapsed = nullptr) {
  RunResult out;
  si::check::HistoryRecorder rec(threads);
  seed_cells(out.cells, rec);
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, threads);
  auto be = make(eng, rec);
  std::vector<std::vector<Op>> scripts;
  scripts.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    scripts.push_back(
        make_script(seed ^ static_cast<std::uint64_t>(t) * 0x9e3779b9ULL,
                    /*with_capacity_stress=*/true));
  }
  std::vector<std::size_t> pos(static_cast<std::size_t>(threads), 0);
  const auto rs = eng.run(1e9, [&](int t) {
    auto& p = pos[static_cast<std::size_t>(t)];
    const auto& sc = scripts[static_cast<std::size_t>(t)];
    if (p >= sc.size()) {
      eng.wait(1e12);  // done: idle past the deadline
      return;
    }
    const Op& op = sc[p++];
    be.execute(op.kind == OpKind::kRoScan,
               [&](auto& tx) { run_op(tx, op, out.cells); });
  });
  out.stats = be.thread_stats()[0];
  out.history = rec.merged();
  if (totals != nullptr) *totals = rs.totals;
  if (elapsed != nullptr) *elapsed = rs.elapsed_seconds;
  return out;
}

TEST(SlimVsTtasSim, SharedOffSchedulesAreIdentical) {
  // With shared-mode RO admission disabled, kSlim differs from kTtas only
  // in bookkeeping (modelled futex wake-ups, kSglWait/kSglWake instants) —
  // the contended waits charge identical virtual time by construction. An
  // 8-thread capacity-stressed run must therefore produce byte-identical
  // schedules: same per-run totals, same abort causes, same final memory,
  // same virtual end time.
  si::util::ThreadStats slim_tot{}, ttas_tot{};
  double slim_end = 0, ttas_end = 0;
  const auto slim = run_sim_mt(
      /*seed=*/42, /*threads=*/8,
      [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kSlim,
                                 /*sgl_shared_ro=*/false);
      },
      &slim_tot, &slim_end);
  const auto ttas = run_sim_mt(
      /*seed=*/42, /*threads=*/8,
      [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kTtas,
                                 /*sgl_shared_ro=*/false);
      },
      &ttas_tot, &ttas_end);
  EXPECT_EQ(slim_end, ttas_end);
  EXPECT_EQ(slim_tot.commits, ttas_tot.commits);
  EXPECT_EQ(slim_tot.ro_commits, ttas_tot.ro_commits);
  EXPECT_EQ(slim_tot.sgl_commits, ttas_tot.sgl_commits);
  for (int c = 0; c < static_cast<int>(AbortCause::kCauseCount_); ++c) {
    EXPECT_EQ(slim_tot.aborts_by_cause[c], ttas_tot.aborts_by_cause[c])
        << "abort cause: " << to_string(static_cast<AbortCause>(c));
  }
  ASSERT_EQ(slim.cells.size(), ttas.cells.size());
  for (std::size_t i = 0; i < slim.cells.size(); ++i) {
    EXPECT_EQ(slim.cells[i].v, ttas.cells[i].v) << "cell " << i;
  }
  // The one permitted difference: slim books the futex sleeps the real lock
  // would have taken; TTAS never does.
  EXPECT_EQ(ttas_tot.sgl_sleep_wakeups, 0u);
}

TEST(SlimVsTtasSim, SharedAdmissionKeepsSnapshotIsolation) {
  // Shared-mode admission is the one behavioural difference the slim lock
  // enables: read-only transactions join mid-drain and overlap the holder.
  // The drain loop skips those joiners (sihtm_core.hpp), so this is the
  // test that a skipped joiner can never observe the SGL body's plain
  // writes mid-flight: the multi-threaded sim history (virtual-time stamps
  // are exact) must stay SI-admissible, and shared mode must actually have
  // been exercised.
  si::util::ThreadStats tot{};
  double shared_end = 0, excl_end = 0;
  const auto run = run_sim_mt(
      /*seed=*/7, /*threads=*/8,
      [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kSlim,
                                 /*sgl_shared_ro=*/true);
      },
      &tot, &shared_end);
  EXPECT_GT(tot.sgl_commits, 0u);  // drains happened
  const auto res = si::check::verify_si(run.history);
  EXPECT_TRUE(res.ok()) << si::check::describe(res);
  EXPECT_EQ(res.committed, tot.commits);
  // Prove shared admission actually fired: the same seed with it disabled
  // must produce a *different* schedule (a join that overlapped a drain
  // changes every subsequent wait), so the virtual end times diverge.
  run_sim_mt(
      /*seed=*/7, /*threads=*/8,
      [](auto& eng, auto& rec) {
        return si::sim::SimSiHtm(eng, /*retries=*/10,
                                 /*straggler_kill_after_ns=*/0, &rec, {},
                                 si::util::SglImpl::kSlim,
                                 /*sgl_shared_ro=*/false);
      },
      nullptr, &excl_end);
  EXPECT_NE(shared_end, excl_end);
}

// --- map-structure scripts (ISSUE 6) ----------------------------------------
//
// The workload zoo (src/maps/) must behave identically across substrates:
// the same deterministic get/put/del/range script, run single-threaded over
// every protocol on real threads and in the simulator, has to produce the
// same per-op return values, the same final ordered dump, the same
// commit/abort accounting, and SI-admissible histories on both sides.
// Allocation is the interesting hazard here — Scratch must hand retried
// bodies the same nodes in the same order on either substrate, or the final
// trees diverge physically and the dumps disagree.

enum class MapOpKind { kGet, kPut, kDel, kRange };

struct MapOp {
  MapOpKind kind = MapOpKind::kGet;
  std::uint64_t key = 0;
  std::uint64_t val = 0;
  std::uint64_t hi = 0;
};

constexpr std::uint64_t kMapKeySpace = 64;
constexpr std::size_t kMapSeedElems = 24;
constexpr int kMapSteps = 120;
constexpr std::size_t kMapScanCap = 48;

std::vector<MapOp> make_map_script(std::uint64_t seed) {
  si::util::Xoshiro256 rng(seed);
  std::vector<MapOp> script;
  script.reserve(kMapSteps);
  for (int i = 0; i < kMapSteps; ++i) {
    MapOp op;
    const std::uint64_t d = rng.below(100);
    op.key = 1 + rng.below(kMapKeySpace);
    op.val = rng.uniform(1, 1 << 20);
    op.hi = op.key + rng.below(24);
    op.kind = d < 25   ? MapOpKind::kGet
              : d < 60 ? MapOpKind::kPut
              : d < 85 ? MapOpKind::kDel
                       : MapOpKind::kRange;
    script.push_back(op);
  }
  return script;
}

struct MapRunResult {
  ThreadStats stats{};
  std::vector<std::uint64_t> results;  ///< one encoded value per script op
  std::vector<si::maps::RangeEntry> dump;
  std::vector<si::check::Event> history;
};

/// Applies one op through the map_* drivers, encoding the observable result
/// (found/value for gets, linked/found for updates, an order-sensitive fold
/// of the hits for ranges) into a single comparable word.
template <typename Map, typename CC>
std::uint64_t apply_map_op(Map& map, CC& cc, const MapOp& op,
                           typename Map::ScratchT& scratch) {
  switch (op.kind) {
    case MapOpKind::kGet: {
      std::uint64_t v = 0;
      return si::maps::map_get(map, cc, op.key, &v) ? 1 + v : 0;
    }
    case MapOpKind::kPut:
      return si::maps::map_put(map, cc, op.key, op.val, scratch) ? 1 : 0;
    case MapOpKind::kDel:
      return si::maps::map_del(map, cc, op.key, scratch) ? 1 : 0;
    case MapOpKind::kRange: {
      si::maps::RangeEntry buf[kMapScanCap];
      const std::size_t n =
          si::maps::map_range(map, cc, op.key, op.hi, buf, kMapScanCap);
      std::uint64_t fold = n;
      for (std::size_t j = 0; j < n; ++j)
        fold = fold * 1099511628211ULL ^ buf[j].key ^ (buf[j].value << 1);
      return fold;
    }
  }
  return 0;
}

template <typename Map, typename Backend, typename MakeBackend>
MapRunResult run_map_real(const std::vector<MapOp>& script,
                          MakeBackend&& make) {
  MapRunResult out;
  si::check::HistoryRecorder rec(8);
  Map map;
  typename Map::Pool pool;
  typename Map::ScratchT scratch(pool);
  // Seeded through DirectCC before the backend exists: both substrates start
  // from the identical pre-populated tree, outside the recorded history.
  si::maps::map_seed(map, kMapSeedElems, kMapKeySpace, 77, scratch);
  Backend be = make(rec);
  be.register_thread(0);
  out.results.reserve(script.size());
  for (const auto& op : script)
    out.results.push_back(apply_map_op(map, be, op, scratch));
  out.stats = be.thread_stats()[0];
  out.dump = si::maps::map_dump(map);
  out.history = rec.merged();
  return out;
}

template <typename Map, typename Backend, typename MakeBackend>
MapRunResult run_map_sim(const std::vector<MapOp>& script, MakeBackend&& make) {
  MapRunResult out;
  si::check::HistoryRecorder rec(8);
  Map map;
  typename Map::Pool pool;
  typename Map::ScratchT scratch(pool);
  si::maps::map_seed(map, kMapSeedElems, kMapKeySpace, 77, scratch);
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, 1);
  Backend be = make(eng, rec);
  out.results.reserve(script.size());
  eng.run(1e9, [&](int) {
    for (const auto& op : script)
      out.results.push_back(apply_map_op(map, be, op, scratch));
    eng.wait(1e12);  // past the deadline: the script runs exactly once
  });
  out.stats = be.thread_stats()[0];
  out.dump = si::maps::map_dump(map);
  out.history = rec.merged();
  return out;
}

void expect_map_equivalent(const MapRunResult& real, const MapRunResult& sim) {
  ASSERT_EQ(real.results.size(), sim.results.size());
  for (std::size_t i = 0; i < real.results.size(); ++i)
    EXPECT_EQ(real.results[i], sim.results[i]) << "op " << i;
  ASSERT_EQ(real.dump.size(), sim.dump.size());
  for (std::size_t i = 0; i < real.dump.size(); ++i) {
    EXPECT_EQ(real.dump[i].key, sim.dump[i].key) << "dump entry " << i;
    EXPECT_EQ(real.dump[i].value, sim.dump[i].value) << "dump entry " << i;
  }
  EXPECT_EQ(real.stats.commits, sim.stats.commits);
  EXPECT_EQ(real.stats.ro_commits, sim.stats.ro_commits);
  EXPECT_EQ(real.stats.sgl_commits, sim.stats.sgl_commits);
  for (int c = 0; c < static_cast<int>(AbortCause::kCauseCount_); ++c) {
    EXPECT_EQ(real.stats.aborts_by_cause[c], sim.stats.aborts_by_cause[c])
        << "abort cause: " << to_string(static_cast<AbortCause>(c));
  }
  for (const auto* h : {&real.history, &sim.history}) {
    const auto res = si::check::verify_si(*h);
    EXPECT_TRUE(res.ok()) << si::check::describe(res);
    EXPECT_EQ(res.committed, real.stats.commits);
  }
}

/// One structure, all five protocols, real vs sim. Map updates write a
/// bounded handful of lines (worst case: a B+-tree root split), far under
/// the 64-line TMCAM, so even raw-ROT runs the full script.
template <typename Map>
void map_cases(std::uint64_t seed) {
  const auto script = make_map_script(seed);
  {
    SCOPED_TRACE("si-htm");
    const auto real = run_map_real<Map, si::sihtm::SiHtm>(script, [](auto& rec) {
      return si::sihtm::SiHtm({.max_threads = 8, .recorder = &rec});
    });
    const auto sim =
        run_map_sim<Map, si::sim::SimSiHtm>(script, [](auto& eng, auto& rec) {
          return si::sim::SimSiHtm(eng, /*retries=*/10,
                                   /*straggler_kill_after_ns=*/0, &rec);
        });
    expect_map_equivalent(real, sim);
  }
  {
    SCOPED_TRACE("htm-sgl");
    const auto real =
        run_map_real<Map, si::baselines::HtmSgl>(script, [](auto& rec) {
          return si::baselines::HtmSgl({.max_threads = 8, .recorder = &rec});
        });
    const auto sim =
        run_map_sim<Map, si::sim::SimHtmSgl>(script, [](auto& eng, auto& rec) {
          return si::sim::SimHtmSgl(eng, /*retries=*/10, &rec);
        });
    expect_map_equivalent(real, sim);
  }
  {
    SCOPED_TRACE("p8tm");
    const auto real =
        run_map_real<Map, si::baselines::P8tm>(script, [](auto& rec) {
          return si::baselines::P8tm({.max_threads = 8, .recorder = &rec});
        });
    const auto sim =
        run_map_sim<Map, si::sim::SimP8tm>(script, [](auto& eng, auto& rec) {
          return si::sim::SimP8tm(eng, /*retries=*/10, &rec);
        });
    expect_map_equivalent(real, sim);
  }
  {
    SCOPED_TRACE("silo");
    const auto real =
        run_map_real<Map, si::baselines::Silo>(script, [](auto& rec) {
          return si::baselines::Silo({.max_threads = 8, .recorder = &rec});
        });
    const auto sim =
        run_map_sim<Map, si::sim::SimSilo>(script, [](auto& eng, auto& rec) {
          return si::sim::SimSilo(eng, &rec);
        });
    expect_map_equivalent(real, sim);
  }
  {
    SCOPED_TRACE("raw-rot");
    const auto real =
        run_map_real<Map, si::baselines::RawRot>(script, [](auto& rec) {
          return si::baselines::RawRot({.max_threads = 8, .recorder = &rec});
        });
    const auto sim =
        run_map_sim<Map, si::sim::SimRawRot>(script, [](auto& eng, auto& rec) {
          return si::sim::SimRawRot(eng, /*retries=*/10, &rec);
        });
    expect_map_equivalent(real, sim);
  }
}

class MapEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapEquivalenceTest, Skiplist) {
  map_cases<si::maps::SkipList>(GetParam());
}
TEST_P(MapEquivalenceTest, Bst) { map_cases<si::maps::Bst>(GetParam()); }
TEST_P(MapEquivalenceTest, Btree) { map_cases<si::maps::Btree>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, MapEquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 20260807u));

}  // namespace
