// Tests of the extension features: the histogram utility, the POWER9 LVDIR
// model in the simulator, and the straggler-killing policy.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/backoff.hpp"
#include "util/histogram.hpp"

namespace {

using si::util::AbortCause;
using si::util::Histogram;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(2), 3u);
  EXPECT_EQ(Histogram::upper_bound(10), 1023u);
}

TEST(HistogramTest, CountMeanMax) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), (1 + 3 + 100) / 3.0, 1e-9);
}

TEST(HistogramTest, QuantileWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 900; ++i) h.record(10);
  for (int i = 0; i < 100; ++i) h.record(10000);
  const auto p50 = h.quantile(0.5);
  EXPECT_GE(p50, 10u);
  EXPECT_LE(p50, 31u);  // 10's bucket upper bound is 15; allow one bucket
  const auto p99 = h.quantile(0.99);
  EXPECT_GE(p99, 8192u);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  a.record(5);
  b.record(50);
  b.record(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// --- POWER9 LVDIR model -------------------------------------------------

TEST(LvdirTest, Power9ConfigEnablesLvdir) {
  const auto p9 = si::sim::SimMachineConfig::power9();
  EXPECT_EQ(p9.lvdir_lines, 4096u);  // 512 KiB / 128 B
  EXPECT_EQ(p9.lvdir_max_threads, 2);
  const si::sim::SimMachineConfig p8;
  EXPECT_EQ(p8.lvdir_lines, 0u);
}

TEST(LvdirTest, HtmReadsUseLvdirAndEscapeTmcamLimit) {
  si::sim::SimEngine eng(si::sim::SimMachineConfig::power9(), 1);
  std::vector<Cell> cells(200);  // 200 read lines: > TMCAM, < LVDIR
  bool committed = false;
  eng.run(1e9, [&](int) {
    eng.tx_begin(si::sim::SimTxMode::kHtm);
    EXPECT_TRUE(eng.thread_uses_lvdir(0));
    try {
      for (auto& c : cells) {
        std::uint64_t v;
        eng.access(&v, &c.v, 8, false, true, AbortCause::kConflictRead);
      }
      eng.tx_commit();
      committed = true;
    } catch (const si::sim::TxAbort&) {
    }
    eng.wait(1e12);
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(eng.lvdir_used(0), 0u);  // released at commit
  EXPECT_EQ(eng.lvdir_users(0), 0);
}

TEST(LvdirTest, WritesStillBoundByTmcamOnPower9) {
  si::sim::SimEngine eng(si::sim::SimMachineConfig::power9(), 1);
  std::vector<Cell> cells(100);
  AbortCause cause = AbortCause::kNone;
  eng.run(1e9, [&](int) {
    eng.tx_begin(si::sim::SimTxMode::kHtm);
    try {
      const std::uint64_t one = 1;
      for (auto& c : cells) eng.access(&c.v, &one, 8, true, true,
                                       AbortCause::kConflictWrite);
      eng.tx_commit();
    } catch (const si::sim::TxAbort& a) {
      cause = a.cause;
    }
    eng.wait(1e12);
  });
  EXPECT_EQ(cause, AbortCause::kCapacity);
}

TEST(LvdirTest, OnlyTwoThreadsPerPairGetSlots) {
  // Threads 0, 10, 20 all sit on cores 0/0/0... under scatter pinning
  // tids 0 and 10 -> core 0, tid 20 -> core 0 as well (20 % 10): all three
  // share LVDIR pair 0, so the third-comer must be denied a slot.
  si::sim::SimEngine eng(si::sim::SimMachineConfig::power9(), 21);
  bool third_got_slot = true;
  eng.run(1e6, [&](int tid) {
    if (tid == 0 || tid == 10) {
      eng.tx_begin(si::sim::SimTxMode::kHtm);
      eng.wait(5000);  // hold the slot
      eng.tx_commit();
    } else if (tid == 20) {
      eng.wait(1000);
      eng.tx_begin(si::sim::SimTxMode::kHtm);
      third_got_slot = eng.thread_uses_lvdir(20);
      eng.tx_commit();
    }
    eng.wait(1e9);
  });
  EXPECT_FALSE(third_got_slot);
  EXPECT_EQ(eng.lvdir_users(0), 0);
}

// --- straggler killing -----------------------------------------------------

TEST(StragglerKillTest, RealRuntimeKillsLaggard) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 4;
  cfg.straggler_kill_spins = 200;
  si::sihtm::SiHtm cc(cfg);
  Cell x, y;
  std::atomic<bool> straggler_in{false};
  std::atomic<bool> committer_done{false};

  std::thread straggler([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      tx.write(&y.v, std::uint64_t{1});  // be a killable hardware tx
      straggler_in.store(true, std::memory_order_release);
      // Dawdle until killed (first attempt) or the committer finished
      // (retry attempts).
      si::util::Backoff b;
      while (!committer_done.load(std::memory_order_acquire)) {
        cc.htm().check_killed();
        b.pause();
      }
    });
  });
  std::thread committer([&] {
    cc.register_thread(1);
    si::util::Backoff b;
    while (!straggler_in.load(std::memory_order_acquire)) b.pause();
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{2}); });
    committer_done.store(true, std::memory_order_release);
  });
  straggler.join();
  committer.join();
  EXPECT_EQ(x.v, 2u);
  EXPECT_EQ(y.v, 1u);  // straggler retried and committed after the kill
  EXPECT_GE(cc.thread_stats()[0].aborts_by_cause[static_cast<int>(
                AbortCause::kKilledAsStraggler)],
            1u);
}

TEST(StragglerKillTest, DisabledPolicyNeverKills) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 4;
  cfg.straggler_kill_spins = 0;  // default: the paper's configuration
  si::sihtm::SiHtm cc(cfg);
  Cell x, y;
  std::atomic<bool> straggler_in{false}, release{false};

  std::thread straggler([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      tx.write(&y.v, std::uint64_t{1});
      straggler_in.store(true, std::memory_order_release);
      si::util::Backoff b;
      while (!release.load(std::memory_order_acquire)) {
        cc.htm().check_killed();
        b.pause();
      }
    });
  });
  std::thread committer([&] {
    cc.register_thread(1);
    si::util::Backoff b;
    while (!straggler_in.load(std::memory_order_acquire)) b.pause();
    std::thread unblocker([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      release.store(true, std::memory_order_release);
    });
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{2}); });
    unblocker.join();
  });
  straggler.join();
  committer.join();
  EXPECT_EQ(cc.thread_stats()[0].aborts_by_cause[static_cast<int>(
                AbortCause::kKilledAsStraggler)],
            0u);
  EXPECT_EQ(y.v, 1u);
}

TEST(StragglerKillTest, SimPolicyRaisesStragglerAborts) {
  auto run_with = [](double kill_after_ns) {
    si::sim::SimMachineConfig mcfg;
    si::sim::SimEngine eng(mcfg, 4);
    si::sim::SimSiHtm cc(eng, 10, kill_after_ns);
    std::vector<Cell> cells(4);
    std::vector<si::util::Xoshiro256> rngs;
    for (int t = 0; t < 4; ++t) rngs.emplace_back(5 + t);
    eng.run(2e6, [&](int tid) {
      auto& rng = rngs[static_cast<std::size_t>(tid)];
      cc.execute(false, [&](auto& tx) {
        const auto i = rng.below(cells.size());
        tx.write(&cells[i].v, tx.read(&cells[i].v) + 1);
        // Simulated "slow" tail: stragglers linger inside the transaction.
        for (int spin = 0; spin < 30; ++spin) eng.wait(100);
      });
    });
    std::uint64_t straggler_kills = 0;
    for (int t = 0; t < 4; ++t) {
      straggler_kills += eng.stats(t).aborts_by_cause[static_cast<int>(
          AbortCause::kKilledAsStraggler)];
    }
    return straggler_kills;
  };
  EXPECT_EQ(run_with(0), 0u);
  EXPECT_GT(run_with(300), 0u);
}

}  // namespace
