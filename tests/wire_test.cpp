// Unit and property tests for the binary wire protocol (serve/wire.hpp):
// framing round-trips, truncated and oversized length prefixes, interleaved
// pipelined responses matched by correlation id, and a randomized-chunking
// property run that feeds the parser the same byte stream split at every
// arbitrary boundary a socket could produce.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace si::serve::wire {
namespace {

Response make_resp(std::uint64_t id, std::uint64_t value, Status status) {
  Response r;
  r.id = id;
  r.value = value;
  r.status = status;
  return r;
}

TEST(Wire, RequestRoundTrip) {
  std::string buf;
  encode_request(&buf, /*id=*/0x0123456789ABCDEFull, /*op=*/0xBEEF,
                 /*key=*/0xFEDCBA9876543210ull, /*arg=*/42);
  ASSERT_EQ(buf.size(), kRequestFrame);

  FrameParser p;
  p.append(buf.data(), buf.size());
  FrameView f;
  ASSERT_TRUE(p.next(&f));
  std::uint64_t id = 0, key = 0, arg = 0;
  std::uint16_t op = 0;
  ASSERT_TRUE(decode_request(f, &id, &op, &key, &arg));
  EXPECT_EQ(id, 0x0123456789ABCDEFull);
  EXPECT_EQ(op, 0xBEEF);
  EXPECT_EQ(key, 0xFEDCBA9876543210ull);
  EXPECT_EQ(arg, 42u);
  EXPECT_FALSE(p.next(&f));
  EXPECT_FALSE(p.poisoned());
  EXPECT_EQ(p.pending(), 0u);
}

TEST(Wire, ResponseRoundTrip) {
  std::string buf;
  encode_response(&buf, make_resp(7, 0xA5A5A5A5u, Status::kRejected));
  ASSERT_EQ(buf.size(), kResponseFrame);

  FrameParser p;
  p.append(buf.data(), buf.size());
  FrameView f;
  ASSERT_TRUE(p.next(&f));
  std::uint64_t id = 0, value = 0;
  int status = -1;
  ASSERT_TRUE(decode_response(f, &id, &status, &value));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(value, 0xA5A5A5A5u);
  EXPECT_EQ(status, static_cast<int>(Status::kRejected));
}

// A truncated prefix (or truncated payload) must pend, never produce a
// frame, and never poison: more bytes may still arrive.
TEST(Wire, TruncatedPrefixAndPayloadPend) {
  std::string buf;
  encode_request(&buf, 1, 2, 3, 4);

  FrameParser p;
  FrameView f;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    FrameParser partial;
    partial.append(buf.data(), cut);
    EXPECT_FALSE(partial.next(&f)) << "frame produced from " << cut
                                   << " of " << buf.size() << " bytes";
    EXPECT_FALSE(partial.poisoned());
    EXPECT_EQ(partial.pending(), cut);
  }
  // The full frame still parses after arriving byte by byte.
  for (char c : buf) p.append(&c, 1);
  ASSERT_TRUE(p.next(&f));
  EXPECT_EQ(f.len, kRequestPayload);
}

// A length prefix above kMaxFrame poisons the stream permanently: no frame
// comes out, later appends are ignored, and the caller must drop the
// connection (there is no resynchronising a corrupt length-prefixed stream).
TEST(Wire, OversizedPrefixPoisons) {
  char prefix[kLenPrefix];
  put_u32(prefix, static_cast<std::uint32_t>(kMaxFrame + 1));

  FrameParser p;
  p.append(prefix, sizeof(prefix));
  FrameView f;
  EXPECT_FALSE(p.next(&f));
  EXPECT_TRUE(p.poisoned());

  // A well-formed frame appended afterwards must not resurrect the stream.
  std::string good;
  encode_request(&good, 1, 2, 3, 4);
  p.append(good.data(), good.size());
  EXPECT_FALSE(p.next(&f));
  EXPECT_TRUE(p.poisoned());
}

// A hostile 4-GiB announcement must poison, not allocate.
TEST(Wire, HugePrefixPoisonsWithoutBuffering) {
  char prefix[kLenPrefix];
  put_u32(prefix, 0xFFFFFFFFu);
  FrameParser p;
  p.append(prefix, sizeof(prefix));
  FrameView f;
  EXPECT_FALSE(p.next(&f));
  EXPECT_TRUE(p.poisoned());
}

// Strict decode: a frame of the wrong payload size is rejected even though
// the framing layer delimited it correctly.
TEST(Wire, WrongPayloadSizeRejectedByDecode) {
  char buf[kLenPrefix + 5];
  put_u32(buf, 5);
  std::memset(buf + kLenPrefix, 0, 5);
  FrameParser p;
  p.append(buf, sizeof(buf));
  FrameView f;
  ASSERT_TRUE(p.next(&f));  // framing is fine ...
  std::uint64_t id, key, arg, value;
  std::uint16_t op;
  int status;
  EXPECT_FALSE(decode_request(f, &id, &op, &key, &arg));  // ... decode is not
  EXPECT_FALSE(decode_response(f, &id, &status, &value));
}

// Pipelining: many responses with distinct correlation ids, concatenated in
// an arbitrary (interleaved) completion order, must come back out in exactly
// that order with ids intact — the id is what lets the client re-associate.
TEST(Wire, InterleavedPipelinedResponsesMatchCorrelationIds) {
  constexpr int kN = 64;
  std::vector<std::uint64_t> order;
  for (int i = 0; i < kN; ++i) order.push_back(static_cast<std::uint64_t>(i));
  // Deterministic shuffle: completions arrive out of submission order.
  si::util::Xoshiro256 rng(99);
  for (int i = kN - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.below(static_cast<std::uint64_t>(i + 1))]);
  }

  std::string stream;
  for (std::uint64_t id : order) {
    encode_response(&stream, make_resp(id, id * 3, Status::kOk));
  }

  FrameParser p;
  p.append(stream.data(), stream.size());
  FrameView f;
  std::size_t at = 0;
  while (p.next(&f)) {
    std::uint64_t id = 0, value = 0;
    int status = -1;
    ASSERT_TRUE(decode_response(f, &id, &status, &value));
    ASSERT_LT(at, order.size());
    EXPECT_EQ(id, order[at]);
    EXPECT_EQ(value, order[at] * 3);
    ++at;
  }
  EXPECT_EQ(at, order.size());
  EXPECT_FALSE(p.poisoned());
  EXPECT_EQ(p.pending(), 0u);
}

// Property: a mixed request/response stream split into random chunks (the
// arbitrary boundaries TCP can introduce) always reassembles to the same
// frame sequence, whatever the chunking.
TEST(Wire, RandomChunkingRoundTripsProperty) {
  si::util::Xoshiro256 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const int n_frames = 1 + static_cast<int>(rng.below(40));
    std::string stream;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < n_frames; ++i) {
      const std::uint64_t id = rng();
      ids.push_back(id);
      if (rng.below(2) == 0) {
        encode_request(&stream, id, static_cast<std::uint16_t>(rng.below(8)),
                       rng(), rng());
      } else {
        encode_response(
            &stream, make_resp(id, rng(),
                               rng.below(2) == 0 ? Status::kOk
                                                 : Status::kRejected));
      }
    }

    FrameParser p;
    FrameView f;
    std::size_t fed = 0;
    std::size_t got = 0;
    auto drain = [&] {
      while (p.next(&f)) {
        std::uint64_t id = 0, key = 0, arg = 0, value = 0;
        std::uint16_t op = 0;
        int status = -1;
        if (f.len == kRequestPayload) {
          ASSERT_TRUE(decode_request(f, &id, &op, &key, &arg));
        } else {
          ASSERT_EQ(f.len, kResponsePayload);
          ASSERT_TRUE(decode_response(f, &id, &status, &value));
        }
        ASSERT_LT(got, ids.size());
        EXPECT_EQ(id, ids[got]);
        ++got;
      }
    };
    while (fed < stream.size()) {
      const std::size_t chunk =
          1 + static_cast<std::size_t>(rng.below(
                  static_cast<std::uint64_t>(stream.size() - fed)));
      p.append(stream.data() + fed, chunk);
      fed += chunk;
      drain();
    }
    EXPECT_EQ(got, ids.size()) << "round " << round;
    EXPECT_FALSE(p.poisoned());
    EXPECT_EQ(p.pending(), 0u);
  }
}

}  // namespace
}  // namespace si::serve::wire
