// Tests of the SI-HTM protocol: fast paths, safety wait, SGL fall-back,
// snapshot-isolation guarantees (write skew allowed, dirty/unrepeatable
// reads prevented) and stress invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sihtm/sihtm.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::sihtm;
using si::p8::TxAbort;
using si::util::AbortCause;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

SiHtmConfig small_cfg(int retries = 10) {
  SiHtmConfig cfg;
  cfg.max_threads = 16;
  cfg.retries = retries;
  return cfg;
}

void await(const std::atomic<bool>& flag) {
  si::util::Backoff b;
  while (!flag.load(std::memory_order_acquire)) b.pause();
}

TEST(SiHtmPaths, ReadOnlyFastPath) {
  SiHtm cc(small_cfg());
  cc.register_thread(0);
  std::vector<Cell> cells(1000);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].v = i;

  std::uint64_t sum = 0;
  cc.execute(true, [&](auto& tx) {
    for (auto& c : cells) sum += tx.read(&c.v);
  });
  EXPECT_EQ(sum, 1000u * 999u / 2);
  const auto& st = cc.thread_stats()[0];
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.ro_commits, 1u);  // unlimited read footprint, no hardware tx
  EXPECT_EQ(cc.state_of(0), kInactive);
}

TEST(SiHtmPaths, UpdatePathCommitsViaRot) {
  SiHtm cc(small_cfg());
  cc.register_thread(0);
  Cell x;
  cc.execute(false, [&](auto& tx) {
    EXPECT_EQ(tx.path(), si::sihtm::SiHtmTx::Path::kRot);
    tx.write(&x.v, std::uint64_t{11});
  });
  EXPECT_EQ(x.v, 11u);
  const auto& st = cc.thread_stats()[0];
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.ro_commits, 0u);
  EXPECT_EQ(st.sgl_commits, 0u);
}

TEST(SiHtmPaths, LargeReadSetUpdateTxCommits) {
  // The headline capacity property: an update transaction whose *read* set
  // vastly exceeds the TMCAM commits on the ROT path (only writes count).
  SiHtm cc(small_cfg());
  cc.register_thread(0);
  std::vector<Cell> cells(500);
  Cell out;
  cc.execute(false, [&](auto& tx) {
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += tx.read(&c.v);
    tx.write(&out.v, sum + 1);
  });
  EXPECT_EQ(out.v, 1u);
  const auto& st = cc.thread_stats()[0];
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.sgl_commits, 0u);
  EXPECT_EQ(st.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST(SiHtmPaths, OversizedWriteSetFallsBackToSgl) {
  SiHtm cc(small_cfg(3));
  cc.register_thread(0);
  std::vector<Cell> cells(100);  // 100 written lines > 64 TMCAM entries
  cc.execute(false, [&](auto& tx) {
    for (std::size_t i = 0; i < cells.size(); ++i) tx.write(&cells[i].v, i + 1);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) ASSERT_EQ(cells[i].v, i + 1);
  const auto& st = cc.thread_stats()[0];
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.sgl_commits, 1u);
  // Capacity aborts are persistent: one attempt, then straight to the SGL.
  EXPECT_EQ(st.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 1u);
}

TEST(SiHtmSemantics, WriteSkewIsAllowed) {
  // SI's defining anomaly: both transactions read {x, y} from the same
  // snapshot and write disjoint locations; SI (and SI-HTM) commits both.
  SiHtm cc(small_cfg());
  Cell x, y;
  x.v = 1;
  y.v = 1;
  std::atomic<int> inside{0};

  auto rendezvous = [&] {
    inside.fetch_add(1, std::memory_order_acq_rel);
    si::util::Backoff b;
    while (inside.load(std::memory_order_acquire) < 2) b.pause();
  };

  std::uint64_t t1_read_sum = 0, t2_read_sum = 0;
  std::thread t1([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      t1_read_sum = tx.read(&x.v) + tx.read(&y.v);
      rendezvous();
      tx.write(&x.v, std::uint64_t{0});
    });
  });
  std::thread t2([&] {
    cc.register_thread(1);
    cc.execute(false, [&](auto& tx) {
      t2_read_sum = tx.read(&x.v) + tx.read(&y.v);
      rendezvous();
      tx.write(&y.v, std::uint64_t{0});
    });
  });
  t1.join();
  t2.join();
  // Both read the {1,1} snapshot, both committed: the skew materialised.
  EXPECT_EQ(t1_read_sum, 2u);
  EXPECT_EQ(t2_read_sum, 2u);
  EXPECT_EQ(x.v + y.v, 0u);
  EXPECT_EQ(cc.thread_stats()[0].commits, 1u);
  EXPECT_EQ(cc.thread_stats()[1].commits, 1u);
}

TEST(SiHtmSemantics, NoUnrepeatableReadAcrossConcurrentCommit) {
  // The Fig. 3 anomaly must NOT happen under SI-HTM: a reader that started
  // before a writer's commit keeps seeing the old value; the writer's safety
  // wait holds its HTMEnd until the reader is done (or the reader's access
  // kills it, Fig. 4A).
  SiHtm cc(small_cfg());
  Cell x;
  std::atomic<bool> writer_waiting{false};
  std::uint64_t first = ~0ull, second = ~0ull;

  std::thread reader([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      first = tx.read(&x.v);
      writer_waiting.store(false, std::memory_order_release);
      // Wait until the writer has completed (state == completed) and is
      // parked in its safety wait on us.
      si::util::Backoff b;
      while (cc.state_of(1) != kCompleted) b.pause();
      second = tx.read(&x.v);
    });
  });
  std::thread writer([&] {
    cc.register_thread(1);
    si::util::Backoff b;
    while (cc.state_of(0) <= kCompleted) b.pause();  // reader active?
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{1}); });
  });
  reader.join();
  writer.join();
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 0u);  // snapshot held: no torn view across the commit
  EXPECT_EQ(x.v, 1u);     // the writer eventually (re)committed
}

TEST(SiHtmSemantics, ReadOnlySnapshotIsConsistentUnderUpdates) {
  // Invariant-preserving updates + concurrent RO scans: every scan must see
  // the invariant hold (sum conserved), which fails if RO reads ever observe
  // uncommitted or mid-commit state.
  SiHtm cc(small_cfg());
  constexpr int kCells = 12;
  constexpr std::uint64_t kInitial = 100;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.v = kInitial;
  std::atomic<bool> stop{false};

  std::thread updater([&] {
    cc.register_thread(0);
    si::util::Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const int a = static_cast<int>(rng.below(kCells));
      int b = static_cast<int>(rng.below(kCells));
      if (b == a) b = (b + 1) % kCells;
      cc.execute(false, [&](auto& tx) {
        const auto va = tx.read(&cells[a].v);
        const auto vb = tx.read(&cells[b].v);
        tx.write(&cells[a].v, va - 1);
        tx.write(&cells[b].v, vb + 1);
      });
    }
  });
  std::thread scanner([&] {
    cc.register_thread(1);
    for (int i = 0; i < 300; ++i) {
      std::uint64_t sum = 0;
      cc.execute(true, [&](auto& tx) {
        sum = 0;
        for (auto& c : cells) sum += tx.read(&c.v);
      });
      ASSERT_EQ(sum, kInitial * kCells) << "RO snapshot saw a torn state";
    }
    stop.store(true, std::memory_order_release);
  });
  scanner.join();
  updater.join();
}

TEST(SiHtmSgl, HolderDrainsAndBlocksNewTransactions) {
  SiHtm cc(small_cfg(1));
  std::vector<Cell> big(100);
  Cell marker;
  std::atomic<bool> in_sgl{false}, observed{false};
  std::atomic<bool> ro_ran_during_sgl{false};

  std::thread holder([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      for (auto& c : big) tx.write(&c.v, std::uint64_t{1});  // forces SGL
      if (tx.path() == si::sihtm::SiHtmTx::Path::kSgl) {
        in_sgl.store(true, std::memory_order_release);
        await(observed);
        tx.write(&marker.v, std::uint64_t{42});
      }
    });
  });
  std::thread other([&] {
    await(in_sgl);
    // Give the RO tx a chance to (incorrectly) start while the SGL is held:
    // it must instead wait in SyncWithGL until the holder releases.
    std::thread ro([&] {
      cc.register_thread(1);
      cc.execute(true, [&](auto& tx) {
        // By the time any transaction may run, the SGL body has written 42.
        if (tx.read(&marker.v) != 42) {
          ro_ran_during_sgl.store(true, std::memory_order_release);
        }
      });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    observed.store(true, std::memory_order_release);
    ro.join();
  });
  holder.join();
  other.join();
  EXPECT_EQ(marker.v, 42u);
  // The RO body may only have run after the SGL body wrote the marker.
  EXPECT_FALSE(ro_ran_during_sgl.load());
}

TEST(SiHtmStress, ConcurrentTransfersConserveTotal) {
  // Transfers write both accounts, so any SI anomaly would be a write-write
  // conflict; SI-HTM must keep the global balance exact.
  SiHtm cc(small_cfg());
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cc.register_thread(t);
      si::util::Xoshiro256 rng(500 + t);
      for (int i = 0; i < kOps; ++i) {
        const int from = static_cast<int>(rng.below(kAccounts));
        int to = static_cast<int>(rng.below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        cc.execute(false, [&](auto& tx) {
          const auto f = tx.read(&accounts[from].v);
          const auto g = tx.read(&accounts[to].v);
          tx.write(&accounts[from].v, f - 1);
          tx.write(&accounts[to].v, g + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t total =
      std::accumulate(accounts.begin(), accounts.end(), std::uint64_t{0},
                      [](std::uint64_t s, const Cell& c) { return s + c.v; });
  EXPECT_EQ(total, std::uint64_t{1000} * kAccounts);

  std::uint64_t commits = 0;
  for (const auto& st : cc.thread_stats()) commits += st.commits;
  EXPECT_EQ(commits, static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(SiHtmStress, MixedReadersAndWritersStayConsistent) {
  SiHtm cc(small_cfg());
  constexpr int kCells = 8;
  constexpr std::uint64_t kInitial = 50;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.v = kInitial;

  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      cc.register_thread(t);
      si::util::Xoshiro256 rng(77 + t);
      for (int i = 0; i < 800; ++i) {
        if (rng.percent(60)) {
          std::uint64_t sum = 0;
          cc.execute(true, [&](auto& tx) {
            sum = 0;
            for (auto& c : cells) sum += tx.read(&c.v);
          });
          if (sum != kInitial * kCells) bad.store(true, std::memory_order_relaxed);
        } else {
          const int a = static_cast<int>(rng.below(kCells));
          int b = static_cast<int>(rng.below(kCells));
          if (b == a) b = (b + 1) % kCells;
          cc.execute(false, [&](auto& tx) {
            const auto va = tx.read(&cells[a].v);
            const auto vb = tx.read(&cells[b].v);
            tx.write(&cells[a].v, va - 1);
            tx.write(&cells[b].v, vb + 1);
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  std::uint64_t total = 0;
  for (auto& c : cells) total += c.v;
  EXPECT_EQ(total, kInitial * kCells);
}

}  // namespace
