// Tests of the serving layer (src/serve): queue admission and ordering,
// an in-process mixed burst over the real backends, backpressure shedding,
// request telemetry, and an SI-checked recorded serve run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/verify.hpp"
#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "serve/aimd.hpp"
#include "serve/kv_app.hpp"
#include "serve/map_app.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace si::serve;

Request make_req(std::uint64_t id, std::uint16_t op = KvApp::kGet,
                 std::uint64_t key = 0, std::uint64_t arg = 0) {
  Request r;
  r.id = id;
  r.op = op;
  r.key = key;
  r.arg = arg;
  r.ro = KvApp::is_ro(op);
  return r;
}

void count_completion(void* ctx, const Response&) {
  static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(
      1, std::memory_order_relaxed);
}

TEST(ServeQueue, FifoSingleThreaded) {
  RequestQueue q(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.try_push(make_req(i)), Admit::kAccepted);
  }
  EXPECT_EQ(q.approx_depth(), 10u);

  Request out[16];
  const std::size_t n = q.pop_batch(out, 16);
  ASSERT_EQ(n, 10u);
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(out[i].id, i);
  EXPECT_TRUE(q.empty());
}

TEST(ServeQueue, WatermarkRejectsBeforeCapacity) {
  RequestQueue q(8, 4);
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_EQ(q.watermark(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.try_push(make_req(i)), Admit::kAccepted);
  }
  // Admission control refuses at the watermark even though cells remain.
  EXPECT_EQ(q.try_push(make_req(99)), Admit::kBusy);

  Request out[8];
  EXPECT_EQ(q.pop_batch(out, 8), 4u);
  // Draining reopens admission.
  EXPECT_EQ(q.try_push(make_req(100)), Admit::kAccepted);
}

TEST(ServeQueue, CapacityRoundsUpAndBoundsDepth) {
  RequestQueue q(5);  // rounded up to 8; watermark defaults to capacity
  EXPECT_EQ(q.capacity(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(q.try_push(make_req(i)), Admit::kAccepted);
  }
  // With the watermark disabled the hard bound reports kFull, not kBusy.
  EXPECT_EQ(q.try_push(make_req(8)), Admit::kFull);
  EXPECT_EQ(q.approx_depth(), 8u);
}

TEST(ServeQueue, WrapAroundKeepsFifo) {
  RequestQueue q(4);
  Request out[4];
  std::uint64_t next = 0;
  for (int lap = 0; lap < 100; ++lap) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_EQ(q.try_push(make_req(next + i)), Admit::kAccepted);
    }
    ASSERT_EQ(q.pop_batch(out, 4), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) ASSERT_EQ(out[i].id, next + i);
    next += 3;
  }
}

class ServeSmoke : public ::testing::TestWithParam<si::runtime::Backend> {};

// The serve-smoke acceptance burst: 2 shards, 4 producers, mixed RO/update
// traffic, every accepted request completes exactly once, none fail.
TEST_P(ServeSmoke, MixedBurstCompletesEverything) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 256;
  cfg.runtime.backend = GetParam();
  KvAppConfig app_cfg;
  app_cfg.buckets = 128;
  app_cfg.seed_elements = 2000;
  app_cfg.key_space = 4000;
  KvApp app(app_cfg, cfg.shards);
  Service<KvApp> svc(app, cfg);

  // Sanity: a put is visible to a subsequent get.
  Response resp;
  ASSERT_TRUE(svc.call(make_req(1, KvApp::kPut, 77, 1234), &resp));
  ASSERT_TRUE(svc.call(make_req(2, KvApp::kGet, 77), &resp));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.value, 1234u);

  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2500;
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      si::util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(p));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t key = rng.below(app_cfg.key_space);
        const std::uint64_t roll = rng.below(10);
        const std::uint16_t op = roll < 8 ? KvApp::kGet
                                 : roll == 8 ? KvApp::kPut
                                             : KvApp::kDel;
        Request req = make_req((static_cast<std::uint64_t>(p) << 32) | i, op,
                               key, key * 2 + 1);
        req.done = count_completion;
        req.ctx = &done;
        while (!svc.submit(req).accepted()) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.stop();

  const auto c = svc.counters();
  const std::uint64_t total = kProducers * kPerProducer + 2;  // +2 warm-up calls
  EXPECT_EQ(c.accepted, total);
  EXPECT_EQ(c.completed, total);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(done.load(), kProducers * kPerProducer);

  // Every request ran through the backend as a transaction.
  const auto stats = si::util::aggregate(svc.runtime().thread_stats(), 0.0);
  EXPECT_GT(stats.totals.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServeSmoke,
    ::testing::Values(si::runtime::Backend::kSiHtm,
                      si::runtime::Backend::kHtm),
    [](const ::testing::TestParamInfo<si::runtime::Backend>& info) {
      return info.param == si::runtime::Backend::kSiHtm
                 ? std::string("SiHtm")
                 : std::string("HtmSgl");
    });

// Deliberately slow application: every request takes ~200us, so a flood
// against a tiny queue must trip admission control.
struct SlowApp {
  void execute(si::runtime::Runtime&, int, const Request&, Response* resp) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    resp->value = 1;
  }
};

TEST(ServeBackpressure, OverloadShedsWithoutDeadlock) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 8;
  cfg.admit_watermark = 4;
  cfg.runtime.backend = si::runtime::Backend::kHtm;
  SlowApp app;
  Service<SlowApp> svc(app, cfg);

  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 200;
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> hint_seen{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Request req = make_req((static_cast<std::uint64_t>(p) << 32) | i);
        req.done = count_completion;
        req.ctx = &done;
        const SubmitResult r = svc.submit(req);  // no retry: shed, don't wait
        if (!r.accepted()) {
          hint_seen.fetch_add(r.retry_hint_us > 0 ? 1 : 0,
                              std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.stop();

  const auto c = svc.counters();
  const std::uint64_t offered = kProducers * kPerProducer;
  EXPECT_EQ(c.accepted + c.rejected_busy + c.rejected_full, offered);
  EXPECT_GT(c.rejected_busy + c.rejected_full, 0u);  // overload actually shed
  EXPECT_EQ(c.completed, c.accepted);  // everything accepted still completed
  EXPECT_EQ(done.load(), c.accepted);
  // Every rejection carried a non-zero retry hint.
  EXPECT_EQ(hint_seen.load(), c.rejected_busy + c.rejected_full);
}

// After stop() the workers are gone; a submit must be refused up front, not
// silently queued (which would break completed == accepted and make call()
// spin forever).
TEST(ServeStop, SubmitAfterStopIsRejected) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.runtime.backend = si::runtime::Backend::kHtm;
  SlowApp app;
  Service<SlowApp> svc(app, cfg);
  svc.stop();

  const SubmitResult r = svc.submit(make_req(1));
  EXPECT_EQ(r.admit, Admit::kStopped);
  EXPECT_FALSE(r.accepted());
  EXPECT_FALSE(svc.call(make_req(2), nullptr));

  const auto c = svc.counters();
  EXPECT_EQ(c.accepted, 0u);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.rejected_stopped, 2u);
}

// --- AIMD admission control (serve/aimd.hpp, DESIGN.md section 11) ----------

// The controller is pure arithmetic, so its whole overload -> recovery arc
// is testable deterministically: epochs whose p99 blows the target cut the
// watermark multiplicatively down to the floor, and idle epochs (the shape
// of "the overload passed and the shed clients went away") raise it
// additively back to capacity.
TEST(ServeAimd, ControllerCutsOnOverloadAndIdleEpochsRecover) {
  AimdConfig acfg;
  acfg.enabled = true;
  acfg.target_p99_ns = 1'000'000;  // 1 ms
  acfg.min_watermark = 8;
  acfg.add_step = 16;
  acfg.cut_factor = 0.5;
  constexpr std::size_t kCapacity = 256;
  AimdController ctl(acfg, kCapacity, /*initial_watermark=*/kCapacity);

  si::util::Histogram slow;  // every request an order of magnitude over target
  for (int i = 0; i < 100; ++i) slow.record(10'000'000);
  si::util::Histogram one_attempt;  // retries mean 1.0: no aborts
  one_attempt.record(1);

  std::size_t wm = kCapacity;
  for (int e = 0; e < 10; ++e) {
    const std::size_t prev = wm;
    wm = ctl.on_epoch(slow, one_attempt);
    EXPECT_LE(wm, prev) << "overloaded epoch must never raise";
  }
  EXPECT_EQ(wm, acfg.min_watermark);  // halved down to the floor, not below
  EXPECT_GE(ctl.state().cuts, 5u);    // 256 -> 128 -> 64 -> 32 -> 16 -> 8
  EXPECT_EQ(ctl.state().last_p99_ns, slow.quantile(0.99));

  const si::util::Histogram idle;  // count() == 0
  for (int e = 0; e < 32 && wm < kCapacity; ++e) {
    const std::size_t prev = wm;
    wm = ctl.on_epoch(idle, idle);
    EXPECT_GE(wm, prev) << "idle epoch must never cut";
    EXPECT_LE(wm, prev + acfg.add_step);  // additive, not multiplicative
  }
  EXPECT_EQ(wm, kCapacity);  // fully re-opened
  EXPECT_GT(ctl.state().raises, 0u);
}

// A quiet-latency epoch can still be a bad epoch when most attempts abort:
// the retries histogram's mean is attempts-per-commit, so mean 5 is an 80%
// abort rate — past the 75% default, the controller must cut.
TEST(ServeAimd, ControllerCutsOnAbortStorm) {
  AimdConfig acfg;
  acfg.enabled = true;
  acfg.target_p99_ns = 1'000'000'000;  // latency goal impossible to miss
  constexpr std::size_t kCapacity = 64;
  AimdController ctl(acfg, kCapacity, kCapacity);

  si::util::Histogram fast;
  for (int i = 0; i < 100; ++i) fast.record(1'000);
  si::util::Histogram storm;
  for (int i = 0; i < 100; ++i) storm.record(5);  // 5 attempts per commit

  const std::size_t wm = ctl.on_epoch(fast, storm);
  EXPECT_LT(wm, kCapacity);
  EXPECT_EQ(ctl.state().cuts, 1u);
  EXPECT_GT(ctl.state().last_abort_pct, 75.0);
}

// Third input signal: a storm of SGL futex wake-ups cuts even when latency
// looks fine, and — unlike the latency/abort signals — even on an idle epoch
// (threads parked on the fallback lock with no completions is the convoy at
// its worst, not quiet). Below the threshold the signal must stay silent.
TEST(ServeAimd, ControllerCutsOnSglWakeupStorm) {
  AimdConfig acfg;
  acfg.enabled = true;
  acfg.target_p99_ns = 1'000'000'000;  // latency goal impossible to miss
  acfg.wakeup_cut_per_epoch = 100;
  constexpr std::size_t kCapacity = 256;
  AimdController ctl(acfg, kCapacity, kCapacity);

  si::util::Histogram fast;
  for (int i = 0; i < 100; ++i) fast.record(1'000);
  si::util::Histogram one_attempt;
  one_attempt.record(1);

  // Quiet wake-up counts: a good epoch must still raise (here: stay capped).
  std::size_t wm = ctl.on_epoch(fast, one_attempt, /*wakeups_delta=*/99);
  EXPECT_EQ(wm, kCapacity);
  EXPECT_EQ(ctl.state().cuts, 0u);
  EXPECT_EQ(ctl.state().last_wakeups, 99u);

  // At the threshold: cut despite perfect latency and zero aborts.
  wm = ctl.on_epoch(fast, one_attempt, /*wakeups_delta=*/100);
  EXPECT_LT(wm, kCapacity);
  EXPECT_EQ(ctl.state().cuts, 1u);
  EXPECT_EQ(ctl.state().last_wakeups, 100u);

  // An idle epoch with a storm must also cut, not drift back up.
  const si::util::Histogram idle;
  const std::size_t before = ctl.state().watermark;
  wm = ctl.on_epoch(idle, idle, /*wakeups_delta=*/500);
  EXPECT_LT(wm, before);
  EXPECT_EQ(ctl.state().cuts, 2u);

  // Disabled (the default, wakeup_cut_per_epoch == 0): any count is ignored.
  AimdController off(AimdConfig{.enabled = true,
                                .target_p99_ns = 1'000'000'000},
                     kCapacity, kCapacity);
  (void)off.on_epoch(fast, one_attempt, /*wakeups_delta=*/1'000'000);
  EXPECT_EQ(off.state().cuts, 0u);
}

// End to end through the Service: flood a slow app against an unreachable
// latency target and the epoch thread must cut the shard watermarks; stop
// offering load and the idle epochs must re-open admission to capacity.
// Generous polling deadlines keep this stable on a starved host.
TEST(ServeAimd, ServiceOverloadCutsThenIdleReopens) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 256;
  cfg.runtime.backend = si::runtime::Backend::kHtm;
  cfg.aimd.enabled = true;
  cfg.aimd.target_p99_ns = 1'000;  // 1 us: every busy epoch is an overload
  cfg.aimd.epoch_us = 2'000;
  cfg.aimd.min_watermark = 8;
  cfg.aimd.add_step = 64;
  SlowApp app;
  Service<SlowApp> svc(app, cfg);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::atomic<std::uint64_t> done{0};
  std::uint64_t id = 0;
  // Phase 1: offer load until the controller has visibly cut.
  while (svc.aimd_state().cuts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    Request req = make_req(++id);
    req.done = count_completion;
    req.ctx = &done;
    (void)svc.submit(req);  // rejections are expected and fine
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const AimdState overloaded = svc.aimd_state();
  EXPECT_GT(overloaded.cuts, 0u) << "controller never cut under overload";
  EXPECT_LT(overloaded.watermark, cfg.queue_capacity);

  // Phase 2: go quiet; idle epochs must raise the watermark back up.
  while (svc.aimd_state().watermark < cfg.queue_capacity &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const AimdState recovered = svc.aimd_state();
  EXPECT_EQ(recovered.watermark, cfg.queue_capacity)
      << "admission never re-opened after the overload passed";
  EXPECT_GT(recovered.raises, overloaded.raises);

  svc.stop();
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, c.accepted);
  EXPECT_EQ(done.load(), c.accepted);
}

TEST(ServeMetrics, RequestTelemetryLandsInHistograms) {
  si::obs::Metrics metrics(2);
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.runtime.backend = si::runtime::Backend::kSiHtm;
  cfg.runtime.obs.metrics = &metrics;
  KvAppConfig app_cfg;
  app_cfg.buckets = 64;
  app_cfg.seed_elements = 500;
  app_cfg.key_space = 1000;
  KvApp app(app_cfg, cfg.shards);
  Service<KvApp> svc(app, cfg);

  si::util::Xoshiro256 rng(3);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint16_t op = rng.below(10) < 7 ? KvApp::kGet : KvApp::kPut;
    ASSERT_TRUE(svc.call(make_req(i + 1, op, rng.below(app_cfg.key_space), i),
                         nullptr));
  }
  svc.stop();

  const auto c = svc.counters();
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.request_latency.count(), c.completed);
  EXPECT_GT(snap.queue_depth.count(), 0u);  // one sample per drained batch
  EXPECT_LE(snap.queue_depth.count(), snap.request_latency.count());
  EXPECT_GT(snap.request_latency_p99_ns(), 0u);
}

// A recorded in-process serve run must be admissible under SI. One shard, so
// the backend runs single-threaded and the recorded history is exact (see
// check/history.hpp); the seeded map's pre-run values are wildcard versions.
TEST(ServeHistory, RecordedServeRunPassesSiChecker) {
  si::check::HistoryRecorder rec(1);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.runtime.backend = si::runtime::Backend::kSiHtm;
  cfg.runtime.recorder = &rec;
  KvAppConfig app_cfg;
  app_cfg.buckets = 64;
  app_cfg.seed_elements = 256;
  app_cfg.key_space = 512;
  KvApp app(app_cfg, cfg.shards);
  Service<KvApp> svc(app, cfg);

  si::util::Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::uint64_t key = rng.below(app_cfg.key_space);
    const std::uint64_t roll = rng.below(10);
    const std::uint16_t op = roll < 6 ? KvApp::kGet
                             : roll < 8 ? KvApp::kPut
                                        : KvApp::kDel;
    Response resp;
    ASSERT_TRUE(svc.call(make_req(i + 1, op, key, key * 3), &resp));
    EXPECT_NE(resp.status, Status::kFailed);
  }
  svc.stop();

  const auto verdict = si::check::verify_si(rec.merged());
  EXPECT_TRUE(verdict.ok()) << si::check::describe(verdict);
  EXPECT_GT(verdict.committed, 0u);
  EXPECT_GT(verdict.reads_checked, 0u);
}

// --- map-workload serving (src/serve/map_app.hpp) --------------------------

// Point ops and range scans answered by a quiesced map server must agree
// with the structure's own dump: the packed (count << 32 | checksum)
// response is recomputed from the dump restricted to the scanned window.
template <typename Map>
void run_map_scan_case() {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.runtime.backend = si::runtime::Backend::kSiHtm;
  MapAppConfig app_cfg;
  app_cfg.seed_elements = 300;
  app_cfg.key_space = 600;
  app_cfg.scan_cap = 64;
  MapApp<Map> app(app_cfg, cfg.shards);
  Service<MapApp<Map>> svc(app, cfg);

  // Point-op sanity through the service: put / get / del round-trip.
  Response resp;
  ASSERT_TRUE(svc.call(make_req(1, MapOps::kPut, 1001, 4242), &resp));
  ASSERT_TRUE(svc.call(make_req(2, MapOps::kGet, 1001), &resp));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.value, 4242u);
  ASSERT_TRUE(svc.call(make_req(3, MapOps::kDel, 1001), &resp));
  EXPECT_EQ(resp.value, 1u);
  ASSERT_TRUE(svc.call(make_req(4, MapOps::kGet, 1001), &resp));
  EXPECT_EQ(resp.value, 0u);

  // No in-flight requests now, so the direct dump sees the served state.
  const auto dump = si::maps::map_dump(app.map());
  ASSERT_GT(dump.size(), 0u);

  si::util::Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t lo = rng.below(app_cfg.key_space);
    const std::uint64_t hi = lo + rng.below(40);
    ASSERT_TRUE(svc.call(make_req(100 + i, MapOps::kRange, lo, hi), &resp));
    ASSERT_EQ(resp.status, Status::kOk);

    std::vector<si::maps::RangeEntry> expect;
    for (const auto& e : dump) {
      if (e.key >= lo && e.key <= hi && expect.size() < app_cfg.scan_cap) {
        expect.push_back(e);
      }
    }
    EXPECT_EQ(resp.value >> 32, expect.size());
    EXPECT_EQ(resp.value & 0xFFFFFFFFULL,
              MapApp<Map>::checksum(expect.data(), expect.size()) &
                  0xFFFFFFFFULL);
  }
  svc.stop();
  EXPECT_EQ(svc.counters().failed, 0u);
}

TEST(ServeMapScan, SkiplistScanMatchesQuiescedState) {
  run_map_scan_case<si::maps::SkipList>();
}
TEST(ServeMapScan, BstScanMatchesQuiescedState) {
  run_map_scan_case<si::maps::Bst>();
}
TEST(ServeMapScan, BtreeScanMatchesQuiescedState) {
  run_map_scan_case<si::maps::Btree>();
}

// The serve acceptance case from ISSUE 6: range scans racing write traffic
// through the service, with the backend recording every transaction; the
// merged history must be admissible under SI. One shard keeps the recorded
// history exact (single executing thread) while the two client threads
// below race their submissions.
template <typename Map>
void run_map_history_case() {
  si::check::HistoryRecorder rec(1);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.runtime.backend = si::runtime::Backend::kSiHtm;
  cfg.runtime.recorder = &rec;
  MapAppConfig app_cfg;
  app_cfg.seed_elements = 128;
  app_cfg.key_space = 256;
  app_cfg.scan_cap = 48;
  MapApp<Map> app(app_cfg, cfg.shards);
  Service<MapApp<Map>> svc(app, cfg);

  std::thread writer([&] {
    si::util::Xoshiro256 rng(21);
    for (std::uint64_t i = 0; i < 300; ++i) {
      const std::uint64_t key = rng.below(app_cfg.key_space);
      const std::uint16_t op = (i & 1) != 0 ? MapOps::kPut : MapOps::kDel;
      Response resp;
      ASSERT_TRUE(svc.call(make_req(i + 1, op, key, key * 7 + 1), &resp));
      ASSERT_NE(resp.status, Status::kFailed);
    }
  });
  std::thread scanner([&] {
    si::util::Xoshiro256 rng(22);
    for (std::uint64_t i = 0; i < 300; ++i) {
      const std::uint64_t lo = rng.below(app_cfg.key_space);
      Response resp;
      ASSERT_TRUE(svc.call(
          make_req((1ULL << 32) | i, MapOps::kRange, lo, lo + 31), &resp));
      ASSERT_NE(resp.status, Status::kFailed);
    }
  });
  writer.join();
  scanner.join();
  svc.stop();

  const auto verdict = si::check::verify_si(rec.merged());
  EXPECT_TRUE(verdict.ok()) << si::check::describe(verdict);
  EXPECT_GT(verdict.committed, 0u);
  EXPECT_GT(verdict.reads_checked, 0u);
}

TEST(ServeMapHistory, SkiplistRangeScanRunPassesSiChecker) {
  run_map_history_case<si::maps::SkipList>();
}
TEST(ServeMapHistory, BtreeRangeScanRunPassesSiChecker) {
  run_map_history_case<si::maps::Btree>();
}

}  // namespace
