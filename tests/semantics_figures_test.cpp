// Scripted replays of the paper's didactic figures (1-5). Each test encodes
// one interleaving from the paper and asserts the outcome the paper states.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "p8htm/htm.hpp"
#include "sihtm/sihtm.hpp"
#include "sihtm/state_table.hpp"
#include "util/backoff.hpp"

namespace {

using namespace si::p8;
using si::util::AbortCause;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

void await(const std::atomic<bool>& flag) {
  si::util::Backoff b;
  while (!flag.load(std::memory_order_acquire)) b.pause();
}

// Figure 1: SI semantics. t0 writes X; concurrent t1/t2 read from their
// snapshots and must see the pre-t0 value; t3 writes X concurrently with t0
// and must abort (write-write conflict); t1/t2 commit.
//
// SI-HTM is a single-version restriction of SI: instead of letting t0 commit
// while t1 is still reading (as multi-versioned SI would), it holds t0's
// commit back / aborts it. The observable outcomes asserted here are the
// figure's: snapshots never see t0's uncommitted write, and the write-write
// conflict aborts exactly one of {t0, t3}.
TEST(Fig1_SiSemantics, SnapshotsIsolatedAndWriteWriteAborts) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 8;
  si::sihtm::SiHtm cc(cfg);
  Cell x, y;
  y.v = 10;

  std::atomic<bool> t0_wrote{false}, readers_done{false};
  std::uint64_t t1_saw_x = ~0ull, t2_saw_x = ~0ull;

  std::thread t0([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      const auto old_y = tx.read(&y.v);
      tx.write(&y.v, old_y + 10);
      tx.write(&x.v, std::uint64_t{1});
      t0_wrote.store(true, std::memory_order_release);
      // Keep t0 unfinished while t1/t2 read, like the figure's overlap. The
      // readers' accesses may kill us (single-version SI), so poll.
      si::util::Backoff b;
      while (!readers_done.load(std::memory_order_acquire)) {
        cc.htm().check_killed();
        b.pause();
      }
    });
  });
  std::thread t1([&] {
    cc.register_thread(1);
    await(t0_wrote);
    cc.execute(true, [&](auto& tx) { t1_saw_x = tx.read(&x.v); });
  });
  std::thread t2([&] {
    cc.register_thread(2);
    await(t0_wrote);
    cc.execute(true, [&](auto& tx) { t2_saw_x = tx.read(&x.v); });
    readers_done.store(true, std::memory_order_release);
  });
  t1.join();
  t2.join();
  t0.join();

  EXPECT_EQ(t1_saw_x, 0u);  // r(X)=0 in the figure
  EXPECT_EQ(t2_saw_x, 0u);
  EXPECT_EQ(x.v, 1u);  // t0 eventually committed
  EXPECT_EQ(y.v, 20u);

  // Now the t0/t3 write-write conflict: two overlapping writers of X.
  std::atomic<bool> w0_in{false}, w3_done{false};
  std::uint64_t w3_aborts = 0;
  std::thread w0([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      tx.write(&x.v, std::uint64_t{100});
      w0_in.store(true, std::memory_order_release);
      si::util::Backoff b;
      while (!w3_done.load(std::memory_order_acquire)) {
        cc.htm().check_killed();
        b.pause();
      }
    });
  });
  std::thread w3([&] {
    cc.register_thread(3);
    await(w0_in);
    cc.execute(false, [&](auto& tx) {
      // Once our first attempt has hit the write-write conflict, let w0
      // finish so the retry can succeed.
      if (cc.thread_stats()[3].aborts_by_cause[static_cast<int>(
              AbortCause::kConflictWrite)] >= 1) {
        w3_done.store(true, std::memory_order_release);
      }
      tx.write(&x.v, std::uint64_t{200});
    });
    w3_aborts = cc.thread_stats()[3].aborts_by_cause[static_cast<int>(
        AbortCause::kConflictWrite)];
  });
  w0.join();
  w3.join();
  EXPECT_GE(w3_aborts, 1u);  // the overlapping writer had to abort (R5)
  EXPECT_EQ(x.v, 200u);      // w3 retried after w0 and won the final state
}

// Figure 2A: a write-after-read between two ROTs is tolerated (ROT reads are
// untracked), both commit.
TEST(Fig2A_RotWar, Tolerated) {
  HtmRuntime rt{HtmConfig{}};
  Cell x;
  std::atomic<bool> read_done{false}, write_committed{false};
  bool r0_ok = false, r1_ok = false;

  std::thread r0([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    EXPECT_EQ(rt.load(&x.v), 0u);
    read_done.store(true, std::memory_order_release);
    await(write_committed);
    rt.commit();
    r0_ok = true;
  });
  std::thread r1([&] {
    rt.register_thread(1);
    await(read_done);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    rt.commit();
    r1_ok = true;
    write_committed.store(true, std::memory_order_release);
  });
  r0.join();
  r1.join();
  EXPECT_TRUE(r0_ok);
  EXPECT_TRUE(r1_ok);
  EXPECT_EQ(x.v, 1u);
}

// Figure 2B: a read-after-write invalidates the writer ROT's TMCAM entry —
// the writer aborts, the reader commits and never sees the dirty value.
TEST(Fig2B_RotRaw, WriterAborts) {
  HtmRuntime rt{HtmConfig{}};
  Cell x;
  std::atomic<bool> written{false};
  AbortCause r1_cause = AbortCause::kNone;
  std::uint64_t r0_saw = ~0ull;

  std::thread r1([&] {
    rt.register_thread(1);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    written.store(true, std::memory_order_release);
    try {
      si::util::Backoff b;
      for (;;) {
        rt.check_killed();
        b.pause();
      }
    } catch (const TxAbort& a) {
      r1_cause = a.cause;
    }
  });
  std::thread r0([&] {
    rt.register_thread(0);
    await(written);
    rt.begin(TxMode::kRot);
    r0_saw = rt.load(&x.v);
    rt.commit();
  });
  r1.join();
  r0.join();
  EXPECT_EQ(r1_cause, AbortCause::kConflictRead);
  EXPECT_EQ(r0_saw, 0u);
  EXPECT_EQ(x.v, 0u);
}

// Figure 3: WITHOUT the safety wait, raw ROTs admit the anomaly — a reader
// that started before the writer observes both the old and (after the
// writer's immediate commit) the new value of X within one transaction.
// This is the anomaly SI-HTM exists to prevent.
TEST(Fig3_RawRotAnomaly, UnrepeatableReadHappensWithoutSafetyWait) {
  HtmRuntime rt{HtmConfig{}};
  Cell x;
  std::atomic<bool> first_read_done{false}, committed{false};
  std::uint64_t first = ~0ull, second = ~0ull;

  std::thread r0([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    first = rt.load(&x.v);
    first_read_done.store(true, std::memory_order_release);
    await(committed);
    second = rt.load(&x.v);
    rt.commit();
  });
  std::thread r1([&] {
    rt.register_thread(1);
    await(first_read_done);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    rt.commit();  // no safety wait: commits while r0 still runs
    committed.store(true, std::memory_order_release);
  });
  r0.join();
  r1.join();
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 1u);  // the snapshot violation the paper's Fig. 3 shows
}

// Figure 4A: with the safety wait, the same interleaving instead kills the
// writer: the reader's access during the writer's wait invalidates its write
// entry, and the reader sees the original value both times.
TEST(Fig4A_SafetyWait, ReaderKillsWaitingWriter) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 4;
  si::sihtm::SiHtm cc(cfg);
  Cell x;
  std::uint64_t first = ~0ull, second = ~0ull;
  std::atomic<bool> reader_started{false};

  std::thread r0([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      first = tx.read(&x.v);
      reader_started.store(true, std::memory_order_release);
      si::util::Backoff b;
      while (cc.state_of(1) != si::sihtm::kCompleted) b.pause();
      second = tx.read(&x.v);  // invalidates r1's write entry: r1 aborts
    });
  });
  std::thread r1([&] {
    cc.register_thread(1);
    await(reader_started);
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{1}); });
  });
  r0.join();
  r1.join();
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 0u);
  EXPECT_GE(cc.thread_stats()[1].aborts_by_cause[static_cast<int>(
                AbortCause::kConflictRead)],
            1u);
  EXPECT_EQ(x.v, 1u);  // r1's retry committed after r0 finished
}

// Figure 4B: the writer safety-waits, the concurrent transaction reads a
// *different* location; once it completes, the writer commits — no aborts.
TEST(Fig4B_SafetyWait, WriterCommitsAfterCleanWait) {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 4;
  si::sihtm::SiHtm cc(cfg);
  Cell x, y;
  y.v = 3;
  std::atomic<bool> reader_started{false};
  std::uint64_t r0_saw_y = ~0ull;

  std::thread r0([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      reader_started.store(true, std::memory_order_release);
      si::util::Backoff b;
      while (cc.state_of(1) != si::sihtm::kCompleted) b.pause();
      r0_saw_y = tx.read(&y.v);  // disjoint from r1's write set
    });
  });
  std::thread r1([&] {
    cc.register_thread(1);
    await(reader_started);
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{1}); });
  });
  r0.join();
  r1.join();
  EXPECT_EQ(r0_saw_y, 3u);
  EXPECT_EQ(x.v, 1u);
  EXPECT_EQ(cc.thread_stats()[1].commits, 1u);
  // Clean wait: r1 committed on its first ROT attempt, no aborts at all.
  std::uint64_t r1_aborts = 0;
  for (int i = 1; i < static_cast<int>(AbortCause::kCauseCount_); ++i) {
    r1_aborts += cc.thread_stats()[1].aborts_by_cause[i];
  }
  EXPECT_EQ(r1_aborts, 0u);
}

// Figure 5: why the Commit-Timestamp is the instant the committer finishes
// snapshotting the state array rather than HTMEnd. t2 begins after t1's
// snapshot but before t1's HTMEnd, reads t1's value after the HTMEnd — that
// is legal because t1's Commit-Timestamp precedes t2's start. We drive
// Algorithm 1 by hand to freeze t1 between snapshot and HTMEnd.
TEST(Fig5_CommitTimestamp, ReadAfterHtmEndSeesValue) {
  HtmRuntime rt{HtmConfig{}};
  si::sihtm::StateTable state(4);
  si::util::LogicalClock clock;
  Cell x;

  std::atomic<bool> t1_snapshotted{false}, t2_started{false}, t1_ended{false};
  std::uint64_t t2_saw = ~0ull;

  std::thread t1([&] {
    rt.register_thread(1);
    state.set(1, clock.now());
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    // TxEnd by hand: publish completed, snapshot (t2 is inactive: no wait).
    rt.suspend();
    state.set(1, si::sihtm::kCompleted);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    rt.resume();
    std::uint64_t snapshot[4];
    state.snapshot(snapshot);
    EXPECT_LE(snapshot[2], si::sihtm::kCompleted);  // t2 not active yet
    t1_snapshotted.store(true, std::memory_order_release);
    await(t2_started);  // t2 begins *between* our snapshot and HTMEnd
    rt.commit();        // HTMEnd
    state.set(1, si::sihtm::kInactive);
    t1_ended.store(true, std::memory_order_release);
  });
  std::thread t2([&] {
    rt.register_thread(2);
    await(t1_snapshotted);
    state.set(2, clock.now());
    rt.begin(TxMode::kRot);
    t2_started.store(true, std::memory_order_release);
    await(t1_ended);
    t2_saw = rt.load(&x.v);  // after t1's HTMEnd: sees the committed 1
    rt.commit();
    state.set(2, si::sihtm::kInactive);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(t2_saw, 1u);
  EXPECT_EQ(x.v, 1u);
}

}  // namespace
