// Schedule-fuzzer smoke batch (ctest label: fuzz-smoke).
//
// Drives the seeded deterministic fuzzer (src/check/fuzzer.hpp) over the
// simulated backends: the correct ones must survive every schedule with a
// clean SI verdict and a conserved ledger, the intentionally-broken raw-ROT
// mode must produce at least one violation the checker catches, and any
// failing seed must replay to a byte-identical event log.
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"

namespace {

using si::check::FuzzBackend;
using si::check::FuzzConfig;
using si::check::FuzzStruct;
using si::check::FuzzSummary;
using si::check::ScheduleReport;

std::string summarize_failure(const FuzzSummary& s) {
  std::ostringstream os;
  os << s.failures << "/" << s.schedules << " schedules failed; seeds:";
  for (auto seed : s.failing_seeds) os << " " << seed;
  os << "\nfirst failure (seed " << s.first_failure.seed << ", invariants "
     << (s.first_failure.invariants_ok ? "ok" : "VIOLATED") << "):\n"
     << describe(s.first_failure.verify)
     << "replay: run_schedule(cfg, " << s.first_failure.seed
     << ") or tools/si_fuzz --replay=" << s.first_failure.seed << "\n";
  return os.str();
}

void expect_clean(FuzzBackend backend, std::uint64_t base_seed, int n,
                  FuzzStruct structure = FuzzStruct::kLedger) {
  FuzzConfig cfg;
  cfg.backend = backend;
  cfg.structure = structure;
  const FuzzSummary s = si::check::fuzz(cfg, base_seed, n);
  EXPECT_EQ(s.schedules, n);
  EXPECT_TRUE(s.ok()) << summarize_failure(s);
}

// 3 x 72 = 216 seeded schedules across the correct backends — the >= 200
// clean-schedule acceptance bar, kept in the default ctest run.
TEST(FuzzSmoke, SiHtm) { expect_clean(FuzzBackend::kSiHtm, 1000, 72); }
TEST(FuzzSmoke, HtmSgl) { expect_clean(FuzzBackend::kHtmSgl, 2000, 72); }
TEST(FuzzSmoke, Silo) { expect_clean(FuzzBackend::kSilo, 3000, 72); }

TEST(FuzzSmoke, P8tm) { expect_clean(FuzzBackend::kP8tm, 3500, 24); }

// The straggler-killing extension must preserve SI: killed ROTs abort and
// their writes stay invisible. The kill-count assertion keeps the test
// honest — it proves the policy actually fired during the batch.
TEST(FuzzSmoke, SiHtmStragglerKill) {
  FuzzConfig cfg;
  cfg.backend = FuzzBackend::kSiHtm;
  cfg.straggler_kill_after_ns = 400;
  const FuzzSummary s = si::check::fuzz(cfg, 4000, 40);
  EXPECT_TRUE(s.ok()) << summarize_failure(s);
  EXPECT_GT(s.straggler_kills, 0u)
      << "no straggler was ever killed — the policy went unexercised";
}

// The ablated mode (no safety wait, non-transactional reads with no state
// sync) must be caught: somewhere in 200 seeds the checker has to flag a
// torn snapshot or lost update. A clean pass here would mean the checker is
// too weak to see the Fig. 3 anomaly the paper's safety wait exists to stop.
TEST(FuzzBroken, RawRotCaught) {
  FuzzConfig cfg;
  cfg.backend = FuzzBackend::kRawRot;
  cfg.keep_history = true;

  ScheduleReport failing;
  bool found = false;
  for (std::uint64_t seed = 5000; seed < 5200; ++seed) {
    ScheduleReport r = si::check::run_schedule(cfg, seed);
    if (!r.ok()) {
      failing = std::move(r);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found)
      << "raw-ROT survived 200 schedules — checker missed the ablation";
  ASSERT_FALSE(failing.verify.ok()) << "only the ledger invariant tripped; "
                                       "the verifier itself saw nothing";

  // Replaying the failing seed must reproduce the identical event log and
  // the identical verdict.
  const ScheduleReport replay = si::check::run_schedule(cfg, failing.seed);
  EXPECT_EQ(replay.history, failing.history);
  ASSERT_EQ(replay.verify.violations.size(), failing.verify.violations.size());
  for (std::size_t i = 0; i < replay.verify.violations.size(); ++i) {
    EXPECT_EQ(replay.verify.violations[i].kind,
              failing.verify.violations[i].kind);
  }
}

// -- map-structure workloads (ISSUE 6 satellite) ----------------------------

// Clean batches: every correct backend must survive seeded schedules over
// each map structure with a clean SI verdict, conserved key count and an
// intact, strictly-sorted structure.
TEST(MapFuzzSmoke, SkiplistSiHtm) {
  expect_clean(FuzzBackend::kSiHtm, 6000, 24, FuzzStruct::kSkiplist);
}
TEST(MapFuzzSmoke, SkiplistSilo) {
  expect_clean(FuzzBackend::kSilo, 6100, 24, FuzzStruct::kSkiplist);
}
TEST(MapFuzzSmoke, BstSiHtm) {
  expect_clean(FuzzBackend::kSiHtm, 6200, 24, FuzzStruct::kBst);
}
TEST(MapFuzzSmoke, BstHtmSgl) {
  expect_clean(FuzzBackend::kHtmSgl, 6300, 24, FuzzStruct::kBst);
}
TEST(MapFuzzSmoke, BtreeSiHtm) {
  expect_clean(FuzzBackend::kSiHtm, 6400, 24, FuzzStruct::kBtree);
}
TEST(MapFuzzSmoke, BtreeP8tm) {
  expect_clean(FuzzBackend::kP8tm, 6500, 24, FuzzStruct::kBtree);
}

// Committed regression seeds: one pinned schedule per structure, replayed
// with full history retention and required to be deterministic (same seed,
// byte-identical normalized log) and clean. If a future change to a
// structure or a sim backend breaks one of these, the seed in the failure
// message reproduces it exactly via tools/si_fuzz --struct=... --replay=N.
void expect_pinned_seed_clean(FuzzStruct structure, std::uint64_t seed) {
  FuzzConfig cfg;
  cfg.structure = structure;
  cfg.keep_history = true;
  const ScheduleReport a = si::check::run_schedule(cfg, seed);
  EXPECT_TRUE(a.ok()) << "pinned seed " << seed << " regressed:\n"
                      << describe(a.verify);
  ASSERT_FALSE(a.history.empty());
  const ScheduleReport b = si::check::run_schedule(cfg, seed);
  EXPECT_EQ(a.history, b.history) << "schedule replay is not deterministic";
}

TEST(MapFuzzRegression, SkiplistSeed) {
  expect_pinned_seed_clean(FuzzStruct::kSkiplist, 6017);
}
TEST(MapFuzzRegression, BstSeed) {
  expect_pinned_seed_clean(FuzzStruct::kBst, 6203);
}
TEST(MapFuzzRegression, BtreeSeed) {
  expect_pinned_seed_clean(FuzzStruct::kBtree, 6411);
}

// The raw-ROT ablation must be *caught on the skiplist*: without the safety
// wait, a range scan riding the non-transactional read path can observe a
// half-applied update (dirty read / torn snapshot), and the offline verifier
// has to flag it. This is the map-zoo restatement of FuzzBroken.RawRotCaught.
TEST(MapFuzzBroken, RawRotCaughtOnSkiplist) {
  FuzzConfig cfg;
  cfg.backend = FuzzBackend::kRawRot;
  cfg.structure = FuzzStruct::kSkiplist;
  cfg.keep_history = true;

  ScheduleReport failing;
  bool found = false;
  for (std::uint64_t seed = 7000; seed < 7200; ++seed) {
    ScheduleReport r = si::check::run_schedule(cfg, seed);
    if (!r.ok()) {
      failing = std::move(r);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found)
      << "raw-ROT survived 200 skiplist schedules — checker missed the ablation";
  ASSERT_FALSE(failing.verify.ok())
      << "only the conservation invariant tripped; the verifier saw nothing";

  // The failing seed must replay to the identical normalized event log.
  const ScheduleReport replay = si::check::run_schedule(cfg, failing.seed);
  EXPECT_EQ(replay.history, failing.history);
  ASSERT_EQ(replay.verify.violations.size(), failing.verify.violations.size());
  for (std::size_t i = 0; i < replay.verify.violations.size(); ++i) {
    EXPECT_EQ(replay.verify.violations[i].kind,
              failing.verify.violations[i].kind);
  }
}

// Same seed, same schedule, same log — different seed, different log.
TEST(FuzzDeterminism, SameSeedSameLog) {
  FuzzConfig cfg;
  cfg.keep_history = true;
  const ScheduleReport a = si::check::run_schedule(cfg, 42);
  const ScheduleReport b = si::check::run_schedule(cfg, 42);
  const ScheduleReport c = si::check::run_schedule(cfg, 43);
  ASSERT_FALSE(a.history.empty());
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(si::check::dump(a.history), si::check::dump(b.history));
  EXPECT_NE(a.history, c.history);
}

}  // namespace
