// Schedule-fuzzer smoke batch (ctest label: fuzz-smoke).
//
// Drives the seeded deterministic fuzzer (src/check/fuzzer.hpp) over the
// simulated backends: the correct ones must survive every schedule with a
// clean SI verdict and a conserved ledger, the intentionally-broken raw-ROT
// mode must produce at least one violation the checker catches, and any
// failing seed must replay to a byte-identical event log.
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"

namespace {

using si::check::FuzzBackend;
using si::check::FuzzConfig;
using si::check::FuzzSummary;
using si::check::ScheduleReport;

std::string summarize_failure(const FuzzSummary& s) {
  std::ostringstream os;
  os << s.failures << "/" << s.schedules << " schedules failed; seeds:";
  for (auto seed : s.failing_seeds) os << " " << seed;
  os << "\nfirst failure (seed " << s.first_failure.seed << ", ledger "
     << (s.first_failure.ledger_conserved ? "conserved" : "NOT conserved")
     << "):\n"
     << describe(s.first_failure.verify)
     << "replay: run_schedule(cfg, " << s.first_failure.seed
     << ") or tools/si_fuzz --replay=" << s.first_failure.seed << "\n";
  return os.str();
}

void expect_clean(FuzzBackend backend, std::uint64_t base_seed, int n) {
  FuzzConfig cfg;
  cfg.backend = backend;
  const FuzzSummary s = si::check::fuzz(cfg, base_seed, n);
  EXPECT_EQ(s.schedules, n);
  EXPECT_TRUE(s.ok()) << summarize_failure(s);
}

// 3 x 72 = 216 seeded schedules across the correct backends — the >= 200
// clean-schedule acceptance bar, kept in the default ctest run.
TEST(FuzzSmoke, SiHtm) { expect_clean(FuzzBackend::kSiHtm, 1000, 72); }
TEST(FuzzSmoke, HtmSgl) { expect_clean(FuzzBackend::kHtmSgl, 2000, 72); }
TEST(FuzzSmoke, Silo) { expect_clean(FuzzBackend::kSilo, 3000, 72); }

TEST(FuzzSmoke, P8tm) { expect_clean(FuzzBackend::kP8tm, 3500, 24); }

// The straggler-killing extension must preserve SI: killed ROTs abort and
// their writes stay invisible. The kill-count assertion keeps the test
// honest — it proves the policy actually fired during the batch.
TEST(FuzzSmoke, SiHtmStragglerKill) {
  FuzzConfig cfg;
  cfg.backend = FuzzBackend::kSiHtm;
  cfg.straggler_kill_after_ns = 400;
  const FuzzSummary s = si::check::fuzz(cfg, 4000, 40);
  EXPECT_TRUE(s.ok()) << summarize_failure(s);
  EXPECT_GT(s.straggler_kills, 0u)
      << "no straggler was ever killed — the policy went unexercised";
}

// The ablated mode (no safety wait, non-transactional reads with no state
// sync) must be caught: somewhere in 200 seeds the checker has to flag a
// torn snapshot or lost update. A clean pass here would mean the checker is
// too weak to see the Fig. 3 anomaly the paper's safety wait exists to stop.
TEST(FuzzBroken, RawRotCaught) {
  FuzzConfig cfg;
  cfg.backend = FuzzBackend::kRawRot;
  cfg.keep_history = true;

  ScheduleReport failing;
  bool found = false;
  for (std::uint64_t seed = 5000; seed < 5200; ++seed) {
    ScheduleReport r = si::check::run_schedule(cfg, seed);
    if (!r.ok()) {
      failing = std::move(r);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found)
      << "raw-ROT survived 200 schedules — checker missed the ablation";
  ASSERT_FALSE(failing.verify.ok()) << "only the ledger invariant tripped; "
                                       "the verifier itself saw nothing";

  // Replaying the failing seed must reproduce the identical event log and
  // the identical verdict.
  const ScheduleReport replay = si::check::run_schedule(cfg, failing.seed);
  EXPECT_EQ(replay.history, failing.history);
  ASSERT_EQ(replay.verify.violations.size(), failing.verify.violations.size());
  for (std::size_t i = 0; i < replay.verify.violations.size(); ++i) {
    EXPECT_EQ(replay.verify.violations[i].kind,
              failing.verify.violations[i].kind);
  }
}

// Same seed, same schedule, same log — different seed, different log.
TEST(FuzzDeterminism, SameSeedSameLog) {
  FuzzConfig cfg;
  cfg.keep_history = true;
  const ScheduleReport a = si::check::run_schedule(cfg, 42);
  const ScheduleReport b = si::check::run_schedule(cfg, 42);
  const ScheduleReport c = si::check::run_schedule(cfg, 43);
  ASSERT_FALSE(a.history.empty());
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(si::check::dump(a.history), si::check::dump(b.history));
  EXPECT_NE(a.history, c.history);
}

}  // namespace
