// Live telemetry plane (DESIGN.md §13): histogram window edge cases, the
// abort-taxonomy counters, the epoch aggregator and its reconciliation
// invariant, the /metrics and /series renderers, the admin HTTP endpoint,
// trace/live taxonomy parity, and the obs-equivalence guarantee extended to
// the metrics hooks.
#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <cstdint>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "hashmap/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/taxonomy.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/admin.hpp"
#include "serve/kv_app.hpp"
#include "serve/net.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/histogram.hpp"
#include "util/json_parse.hpp"
#include "util/stats.hpp"

namespace {

using si::obs::EpochAggregator;
using si::obs::EpochExternals;
using si::obs::kTaxonomyCounters;
using si::obs::MetricsSnapshot;
using si::obs::Taxonomy;
using si::obs::TaxonomyCounter;
using si::obs::taxonomy_of;
using si::obs::TimeSeries;
using si::util::AbortCause;
using si::util::Histogram;

// --- histogram window edge cases (the aggregator's diffing primitive) --------

TEST(HistogramWindow, QuantileOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.999), 0u);
}

TEST(HistogramWindow, SubtractLeavesTheWindow) {
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.record(100);
  Histogram cum = earlier;
  for (int i = 0; i < 50; ++i) cum.record(100000);
  cum.subtract(earlier);
  EXPECT_EQ(cum.count(), 50u);
  // Only the window's large samples remain, so even p50 sits at their scale.
  EXPECT_GE(cum.quantile(0.5), 100000u);
}

TEST(HistogramWindow, SubtractRegressedBucketsSaturates) {
  // A torn snapshot pair can present an "earlier" with more counts than
  // "current"; the subtraction must clamp at zero, never wrap.
  Histogram earlier;
  for (int i = 0; i < 10; ++i) earlier.record(64);
  Histogram cum;
  cum.record(64);
  cum.subtract(earlier);
  EXPECT_EQ(cum.count(), 0u);
  EXPECT_EQ(cum.quantile(0.99), 0u);
}

TEST(HistogramWindow, SubtractEqualSnapshotsIsEmpty) {
  Histogram a;
  for (int i = 1; i <= 32; ++i) a.record(static_cast<std::uint64_t>(i) * 7);
  Histogram b = a;
  b.subtract(a);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.quantile(0.5), 0u);
}

// --- taxonomy ----------------------------------------------------------------

TEST(TaxonomyTest, AbortCausePartitionIsTotal) {
  EXPECT_EQ(taxonomy_of(AbortCause::kCapacity), TaxonomyCounter::kCapacityAbort);
  EXPECT_EQ(taxonomy_of(AbortCause::kConflictRead),
            TaxonomyCounter::kConflictAbort);
  EXPECT_EQ(taxonomy_of(AbortCause::kConflictWrite),
            TaxonomyCounter::kConflictAbort);
  EXPECT_EQ(taxonomy_of(AbortCause::kKilledAsStraggler),
            TaxonomyCounter::kStragglerKill);
  EXPECT_EQ(taxonomy_of(AbortCause::kKilledBySgl), TaxonomyCounter::kSglKill);
  EXPECT_EQ(taxonomy_of(AbortCause::kExplicit), TaxonomyCounter::kExplicitAbort);
}

TEST(TaxonomyTest, TotalAbortsCountsOnlyTheAbortPartition) {
  Taxonomy t;
  t.bump(TaxonomyCounter::kCapacityAbort, 3);
  t.bump(TaxonomyCounter::kConflictAbort, 2);
  t.bump(TaxonomyCounter::kSglFallback, 7);    // fall-back, not an abort
  t.bump(TaxonomyCounter::kSharedRoAdmit, 5);  // adaptation, not an abort
  t.bump(TaxonomyCounter::kHwKillInit, 4);     // killer side, not an abort
  EXPECT_EQ(t.total_aborts(), 5u);
  EXPECT_EQ(t.count(TaxonomyCounter::kSglFallback), 7u);
}

TEST(TaxonomyTest, MergeAddsAndSubtractSaturates) {
  Taxonomy a, b;
  a.bump(TaxonomyCounter::kConflictAbort, 10);
  b.bump(TaxonomyCounter::kConflictAbort, 4);
  b.bump(TaxonomyCounter::kCapacityAbort, 9);

  Taxonomy merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(TaxonomyCounter::kConflictAbort), 14u);
  EXPECT_EQ(merged.count(TaxonomyCounter::kCapacityAbort), 9u);

  Taxonomy window = a;
  window.subtract(b);  // capacity regresses (0 - 9): clamps, no wrap
  EXPECT_EQ(window.count(TaxonomyCounter::kConflictAbort), 6u);
  EXPECT_EQ(window.count(TaxonomyCounter::kCapacityAbort), 0u);
}

TEST(TaxonomyTest, MetricsResetClearsTaxonomyAndHistograms) {
  si::obs::Metrics m(2);
  m.of(0).taxonomy.bump(TaxonomyCounter::kCapacityAbort);
  m.of(1).taxonomy.bump(TaxonomyCounter::kSglFallback, 3);
  m.of(0).request_latency.record(1234);
  ASSERT_EQ(m.snapshot().taxonomy.count(TaxonomyCounter::kSglFallback), 3u);

  m.reset();
  const MetricsSnapshot s = m.snapshot();
  for (int i = 0; i < kTaxonomyCounters; ++i) EXPECT_EQ(s.taxonomy.count(i), 0u);
  EXPECT_EQ(s.request_latency.count(), 0u);
}

TEST(MetricsSnapshotTest, P999AccessorsTrackTheTail) {
  si::obs::Metrics m(1);
  for (int i = 0; i < 999; ++i) m.of(0).request_latency.record(100);
  m.of(0).request_latency.record(1'000'000);
  for (int i = 0; i < 999; ++i) m.of(0).safety_wait.record(50);
  m.of(0).safety_wait.record(500'000);
  const MetricsSnapshot s = m.snapshot();
  EXPECT_GE(s.request_latency_p999_ns(), 1'000'000u);
  EXPECT_LT(s.request_latency_p50_ns(), 1000u);
  EXPECT_GE(s.safety_wait_p999_ns(), 500'000u);
  EXPECT_GE(s.safety_wait_p999_ns(), s.safety_wait_p99_ns());
}

// --- epoch aggregator --------------------------------------------------------

TEST(EpochAggregatorTest, ScriptedSequenceDiffsCumulatives) {
  TimeSeries series(8);
  EpochAggregator agg(&series);

  si::obs::Metrics m(1);
  EpochExternals ext;

  // Epoch 0: 10 requests completed, 10 commits, 2 conflict aborts.
  for (int i = 0; i < 10; ++i) m.of(0).request_latency.record(1000);
  for (int i = 0; i < 10; ++i) m.of(0).commit_latency.record(500);
  m.of(0).taxonomy.bump(TaxonomyCounter::kConflictAbort, 2);
  ext.now_s = 1.0;
  ext.completed = 10;
  ext.accepted = 12;
  ext.rejected = 2;
  ext.watermark = 64;
  const auto r0 = agg.on_epoch(m.snapshot(), ext);
  EXPECT_EQ(r0.seq, 0u);
  EXPECT_DOUBLE_EQ(r0.dt_s, 1.0);
  EXPECT_EQ(r0.completed, 10u);
  EXPECT_EQ(r0.accepted, 12u);
  EXPECT_EQ(r0.rejected, 2u);
  EXPECT_DOUBLE_EQ(r0.goodput, 10.0);
  EXPECT_EQ(r0.commits, 10u);
  EXPECT_EQ(r0.aborts[static_cast<int>(TaxonomyCounter::kConflictAbort)], 2u);
  EXPECT_EQ(r0.watermark, 64u);

  // Epoch 1: 5 more completions, 1 capacity abort, slower requests.
  for (int i = 0; i < 5; ++i) m.of(0).request_latency.record(100000);
  for (int i = 0; i < 5; ++i) m.of(0).commit_latency.record(500);
  m.of(0).taxonomy.bump(TaxonomyCounter::kCapacityAbort);
  ext.now_s = 1.5;
  ext.completed = 15;
  ext.accepted = 17;
  const auto r1 = agg.on_epoch(m.snapshot(), ext);
  EXPECT_EQ(r1.seq, 1u);
  EXPECT_DOUBLE_EQ(r1.dt_s, 0.5);
  EXPECT_EQ(r1.completed, 5u);
  EXPECT_DOUBLE_EQ(r1.goodput, 10.0);
  EXPECT_EQ(r1.commits, 5u);
  EXPECT_EQ(r1.aborts[static_cast<int>(TaxonomyCounter::kConflictAbort)], 0u);
  EXPECT_EQ(r1.aborts[static_cast<int>(TaxonomyCounter::kCapacityAbort)], 1u);
  // The window saw only this epoch's slow requests.
  EXPECT_GE(r1.req_p50_ns, 100000u);

  // Epoch 2: idle tick — all deltas zero, quantiles zero on an empty window.
  ext.now_s = 2.0;
  const auto r2 = agg.on_epoch(m.snapshot(), ext);
  EXPECT_EQ(r2.completed, 0u);
  EXPECT_EQ(r2.commits, 0u);
  EXPECT_EQ(r2.req_p50_ns, 0u);
  EXPECT_DOUBLE_EQ(r2.goodput, 0.0);

  // Reconciliation: the per-epoch deltas sum to the final cumulative count.
  EXPECT_EQ(series.epochs(), 3u);
  EXPECT_EQ(series.completed_total(), 15u);
}

TEST(EpochAggregatorTest, RingWrapKeepsReconciliationTotals) {
  TimeSeries series(2);
  EpochAggregator agg(&series);
  si::obs::Metrics m(1);
  EpochExternals ext;
  for (int e = 1; e <= 5; ++e) {
    ext.now_s = static_cast<double>(e);
    ext.completed = static_cast<std::uint64_t>(e) * 10;
    agg.on_epoch(m.snapshot(), ext);
  }
  EXPECT_EQ(series.dump().size(), 2u);       // ring kept only the newest two
  EXPECT_EQ(series.epochs(), 5u);            // ...but the totals cover all five
  EXPECT_EQ(series.completed_total(), 50u);  // == final cumulative completed
  const auto recs = series.dump();
  EXPECT_EQ(recs.front().seq + 1, recs.back().seq);  // oldest-first order
}

TEST(EpochAggregatorTest, ResetRebaselines) {
  TimeSeries series(4);
  EpochAggregator agg(&series);
  si::obs::Metrics m(1);
  EpochExternals ext;
  ext.now_s = 1.0;
  ext.completed = 100;
  agg.on_epoch(m.snapshot(), ext);
  agg.reset();
  EXPECT_EQ(series.epochs(), 0u);
  ext.now_s = 2.0;
  ext.completed = 130;
  const auto r = agg.on_epoch(m.snapshot(), ext);
  EXPECT_EQ(r.seq, 0u);
  EXPECT_EQ(r.completed, 130u);  // diffs against zero after the re-baseline
}

// --- renderers ---------------------------------------------------------------

si::serve::TelemetrySources scripted_sources(const MetricsSnapshot* snap,
                                             const TimeSeries* series) {
  si::serve::TelemetrySources src;
  src.snap = snap;
  src.counters.accepted = 120;
  src.counters.completed = 100;
  src.counters.failed = 1;
  src.counters.rejected_busy = 17;
  src.counters.rejected_full = 2;
  src.counters.rejected_stopped = 1;
  src.series = series;
  src.backend = "SI-HTM";
  src.shards = 2;
  src.uptime_s = 3.5;
  return src;
}

TEST(RendererTest, PrometheusExpositionShape) {
  si::obs::Metrics m(1);
  m.of(0).request_latency.record(1000);
  m.of(0).commit_latency.record(400);
  m.of(0).taxonomy.bump(TaxonomyCounter::kCapacityAbort, 5);
  const MetricsSnapshot snap = m.snapshot();
  TimeSeries series(4);
  si::obs::EpochRecord rec;
  rec.completed = 100;
  series.push(rec);

  const std::string text =
      si::serve::render_prometheus(scripted_sources(&snap, &series));

  // Every family: HELP, then TYPE, then samples — in that order.
  EXPECT_LT(text.find("# HELP si_requests_completed_total"),
            text.find("# TYPE si_requests_completed_total counter"));
  EXPECT_LT(text.find("# TYPE si_requests_completed_total counter"),
            text.find("si_requests_completed_total 100"));
  EXPECT_NE(text.find("si_requests_rejected_total{reason=\"busy\"} 17"),
            std::string::npos);
  EXPECT_NE(text.find("si_tx_commits_total 1"), std::string::npos);
  EXPECT_NE(text.find("si_tx_aborts_total{cause=\"capacity_abort\"} 5"),
            std::string::npos);
  // All nine taxonomy labels appear, even at zero.
  for (int i = 0; i < kTaxonomyCounters; ++i) {
    const std::string label = "si_tx_aborts_total{cause=\"" +
                              std::string(si::obs::metric_name(
                                  static_cast<TaxonomyCounter>(i))) +
                              "\"}";
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  EXPECT_NE(text.find("si_request_latency_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("si_request_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("si_series_completed_total 100"), std::string::npos);
  // AIMD off, no reactor: those families are absent, and nothing renders NaN.
  EXPECT_EQ(text.find("si_admission_watermark"), std::string::npos);
  EXPECT_EQ(text.find("si_reactor_"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(RendererTest, SeriesJsonRoundTripsThroughTheParser) {
  si::obs::Metrics m(1);
  for (int i = 0; i < 4; ++i) m.of(0).request_latency.record(2000);
  const MetricsSnapshot snap = m.snapshot();

  TimeSeries series(4);
  EpochAggregator agg(&series);
  EpochExternals ext;
  ext.now_s = 1.0;
  ext.completed = 4;
  ext.accepted = 4;
  ext.watermark = 32;
  agg.on_epoch(snap, ext);

  const std::string json =
      si::serve::render_series_json(scripted_sources(&snap, &series));
  si::util::JsonValue root;
  std::string err;
  ASSERT_TRUE(si::util::json_parse(json, &root, &err)) << err;
  EXPECT_EQ(root["schema"].string, "si-series-v1");
  EXPECT_EQ(root["backend"].string, "SI-HTM");
  EXPECT_EQ(root["counters"]["completed"].u64_or(0), 100u);
  EXPECT_EQ(root["series_totals"]["completed"].u64_or(0), 4u);
  ASSERT_EQ(root["epochs"].array.size(), 1u);
  const auto& e0 = root["epochs"].array[0];
  EXPECT_EQ(e0["seq"].u64_or(99), 0u);
  EXPECT_EQ(e0["completed"].u64_or(0), 4u);
  EXPECT_EQ(e0["watermark"].u64_or(0), 32u);
  EXPECT_TRUE(e0["aborts"].is_object());
  EXPECT_EQ(e0["aborts"]["conflict_abort"].u64_or(99), 0u);
  // No AIMD/reactor sections were supplied, so they must be absent.
  EXPECT_FALSE(root["aimd"].is_object());
  EXPECT_FALSE(root["reactor"].is_object());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  si::util::JsonValue v;
  EXPECT_FALSE(si::util::json_parse("{\"a\": }", &v));
  EXPECT_FALSE(si::util::json_parse("[1,2", &v));
  EXPECT_FALSE(si::util::json_parse("{} trailing", &v));
  EXPECT_TRUE(si::util::json_parse(" {\"a\": [1, -2.5e3, \"x\\n\"]} ", &v));
  EXPECT_DOUBLE_EQ(v["a"].array[1].num_or(0), -2500.0);
}

// --- admin endpoint ----------------------------------------------------------

std::string blocking_get(std::uint16_t port, const std::string& request) {
  std::string err;
  const int fd = si::serve::net::connect_tcp("127.0.0.1", port, &err);
  EXPECT_GE(fd, 0) << err;
  if (fd < 0) return {};
  EXPECT_TRUE(si::serve::net::send_all(fd, request.data(), request.size()));
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  return raw;
}

TEST(AdminServerTest, ServesRegisteredRoutes) {
  si::serve::AdminServer admin(0);  // ephemeral port
  admin.handle("/metrics", "text/plain; version=0.0.4",
               [] { return std::string("si_up 1\n"); });
  admin.handle("/series", "application/json",
               [] { return std::string("{\"schema\":\"si-series-v1\"}"); });
  std::string err;
  ASSERT_TRUE(admin.start(&err)) << err;
  ASSERT_GT(admin.port(), 0);

  const std::string metrics =
      blocking_get(admin.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("\r\n\r\nsi_up 1\n"), std::string::npos);

  // Query strings strip; the handler still matches.
  const std::string series = blocking_get(
      admin.port(), "GET /series?window=5 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(series.find("si-series-v1"), std::string::npos);

  const std::string missing =
      blocking_get(admin.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post =
      blocking_get(admin.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  admin.stop();
}

// --- service integration -----------------------------------------------------

TEST(ServiceTelemetryTest, SeriesReconcilesWithCountersAfterDrain) {
  si::serve::KvAppConfig acfg;
  acfg.buckets = 64;
  acfg.seed_elements = 500;
  acfg.key_space = 1000;
  si::serve::ServiceConfig scfg;
  scfg.shards = 2;
  scfg.telemetry.enabled = true;
  scfg.telemetry.epoch_us = 1000;  // tick fast so mid-run epochs land too
  scfg.telemetry.ring = 16;

  constexpr std::uint64_t kRequests = 400;
  std::uint64_t completed_calls = 0;
  {
    si::serve::KvApp app(acfg, scfg.shards);
    si::serve::Service<si::serve::KvApp> service(app, scfg);
    ASSERT_NE(service.timeseries(), nullptr);
    ASSERT_NE(service.metrics(), nullptr);  // telemetry forced a private sink

    for (std::uint64_t i = 0; i < kRequests; ++i) {
      si::serve::Request req;
      req.id = i;
      req.op = (i % 3 == 0) ? si::serve::KvApp::kPut : si::serve::KvApp::kGet;
      req.key = i % acfg.key_space;
      req.arg = i;
      req.ro = si::serve::KvApp::is_ro(req.op);
      si::serve::Response resp;
      if (service.call(req, &resp)) ++completed_calls;
    }
    service.stop();

    const auto c = service.counters();
    EXPECT_EQ(c.completed, completed_calls);
    // The final drain epoch (pushed by stop()) closes the books exactly.
    EXPECT_EQ(service.timeseries()->completed_total(), c.completed);
    EXPECT_GE(service.timeseries()->epochs(), 1u);

    // A full scrape of the live objects parses and carries the same totals.
    const MetricsSnapshot snap = service.metrics()->snapshot();
    si::serve::TelemetrySources src;
    src.snap = &snap;
    src.counters = c;
    src.series = service.timeseries();
    src.backend = "SI-HTM";
    src.shards = scfg.shards;
    src.uptime_s = 1.0;
    si::util::JsonValue root;
    std::string err;
    ASSERT_TRUE(
        si::util::json_parse(si::serve::render_series_json(src), &root, &err))
        << err;
    EXPECT_EQ(root["series_totals"]["completed"].u64_or(0), c.completed);
    EXPECT_EQ(snap.request_latency.count(), c.completed);
  }
  EXPECT_EQ(completed_calls, kRequests);
}

// --- trace/live parity and sim equivalence -----------------------------------

#define SKIP_IF_TRACE_COMPILED_OUT()         \
  if (!si::obs::kTraceEnabled) {             \
    GTEST_SKIP() << "built with SI_TRACE=0"; \
  }

struct SimObsRun {
  std::string chrome;
  std::uint64_t commits = 0;
  MetricsSnapshot metrics;
  std::array<std::uint64_t, si::obs::kTaxonomyCounters> trace_taxonomy{};
  std::uint64_t dropped = 0;
};

/// Contended sim hash-map run with the given sinks attached. Deterministic:
/// same arguments → byte-identical trace and identical counters.
SimObsRun run_sim(bool with_tracer, bool with_metrics, int threads = 4,
                  double virtual_ns = 3e5) {
  SimObsRun out;
  si::obs::Tracer tracer(threads, 1u << 16);  // big enough to never drop
  si::obs::Metrics metrics(threads);
  si::obs::ObsConfig obs;
  if (with_tracer) obs.tracer = &tracer;
  if (with_metrics) obs.metrics = &metrics;
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, threads);
  si::sim::SimSiHtm cc(eng, 10, 0, nullptr, obs);
  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 8;  // small table: plenty of conflicts and SGL traffic
  wcfg.avg_chain = 16;
  wcfg.ro_pct = 20;
  si::hashmap::Workload workload(wcfg, threads);
  const auto rs = eng.run(virtual_ns, [&](int tid) { workload.step(cc, tid); });
  out.commits = rs.totals.commits;
  std::ostringstream os;
  si::obs::write_chrome_trace(os, tracer);
  out.chrome = os.str();
  out.metrics = metrics.snapshot();
  const auto summary = si::obs::summarize_trace(tracer);
  out.trace_taxonomy = summary.taxonomy;
  for (int t = 0; t < threads; ++t) out.dropped += tracer.dropped(t);
  return out;
}

TEST(TaxonomyParityTest, TraceSummaryMatchesLiveMetrics) {
  SKIP_IF_TRACE_COMPILED_OUT();
  const auto run = run_sim(/*with_tracer=*/true, /*with_metrics=*/true);
  ASSERT_EQ(run.dropped, 0u) << "ring too small for parity comparison";
  EXPECT_GT(run.commits, 0u);
  // The contended table must actually exercise the abort machinery,
  // otherwise this parity check is vacuous.
  EXPECT_GT(run.metrics.taxonomy.total_aborts(), 0u);

  // Trace-derivable counters agree exactly between the offline summary and
  // the live metrics surface. shared-ro-admit and retry-clamp are
  // metrics-only hooks (no trace event by design) and are excluded.
  const std::vector<TaxonomyCounter> derivable = {
      TaxonomyCounter::kCapacityAbort, TaxonomyCounter::kConflictAbort,
      TaxonomyCounter::kStragglerKill, TaxonomyCounter::kSglKill,
      TaxonomyCounter::kExplicitAbort, TaxonomyCounter::kSglFallback,
      TaxonomyCounter::kHwKillInit,
  };
  for (const TaxonomyCounter c : derivable) {
    EXPECT_EQ(run.trace_taxonomy[static_cast<int>(c)],
              run.metrics.taxonomy.count(c))
        << si::obs::to_string(c);
  }
  // The metrics-only counters never show up in a trace summary.
  EXPECT_EQ(run.trace_taxonomy[static_cast<int>(TaxonomyCounter::kSharedRoAdmit)],
            0u);
  EXPECT_EQ(run.trace_taxonomy[static_cast<int>(TaxonomyCounter::kRetryClamp)],
            0u);
}

TEST(TelemetryEquivalenceTest, MetricsHooksDoNotChangeSimOutcome) {
  SKIP_IF_TRACE_COMPILED_OUT();
  // The taxonomy/metrics hooks are pure bookkeeping: attaching the metrics
  // sink must leave the simulated schedule — and therefore the emitted
  // trace — byte-identical to a tracer-only run.
  const auto traced_only = run_sim(/*with_tracer=*/true, /*with_metrics=*/false);
  const auto both = run_sim(/*with_tracer=*/true, /*with_metrics=*/true);
  EXPECT_GT(traced_only.commits, 0u);
  EXPECT_EQ(traced_only.commits, both.commits);
  EXPECT_EQ(traced_only.chrome, both.chrome);
  // And the sink actually recorded while changing nothing.
  EXPECT_EQ(both.metrics.commit_latency.count(), both.commits);
  EXPECT_EQ(traced_only.metrics.commit_latency.count(), 0u);
}

TEST(TraceSummaryTest, PrintSummaryListsTaxonomy) {
  SKIP_IF_TRACE_COMPILED_OUT();
  si::obs::Tracer tracer(1, 64);
  tracer.emit(0, si::obs::TraceEventKind::kBegin, 1.0);
  tracer.emit(0, si::obs::TraceEventKind::kAbort, 2.0,
              static_cast<std::uint32_t>(AbortCause::kCapacity));
  tracer.emit(0, si::obs::TraceEventKind::kBegin, 3.0);
  tracer.emit(0, si::obs::TraceEventKind::kSglAcquire, 4.0);
  tracer.emit(0, si::obs::TraceEventKind::kCommit, 5.0, 2);
  const auto summary = si::obs::summarize_trace(tracer);
  EXPECT_EQ(
      summary.taxonomy[static_cast<int>(TaxonomyCounter::kCapacityAbort)], 1u);
  EXPECT_EQ(summary.taxonomy[static_cast<int>(TaxonomyCounter::kSglFallback)],
            1u);
  std::ostringstream os;
  si::obs::print_summary(os, summary);
  EXPECT_NE(os.str().find("abort taxonomy (live-endpoint labels):"),
            std::string::npos);
  EXPECT_NE(os.str().find("capacity-abort: 1"), std::string::npos);
  EXPECT_NE(os.str().find("sgl-fallback: 1"), std::string::npos);
}

}  // namespace
