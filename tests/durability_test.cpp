// Durability tier (DESIGN.md §14): CRC32C check vector, log-format property
// tests (torn tail at every byte cut-point, CRC corruption, LSN gaps),
// ShardLog open/append/flush/reopen, replay idempotence, the group-commit
// ack-gating invariant (a completion never fires before its covering LSN is
// durable), and the clean-shutdown flush (Service::stop() leaves a fully
// scanned, eof-terminated log).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "durability/crc32c.hpp"
#include "durability/log_format.hpp"
#include "durability/recover.hpp"
#include "durability/wal.hpp"
#include "runtime/runtime.hpp"
#include "serve/kv_app.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace {

using namespace si::durability;
using si::serve::KvApp;
using si::serve::KvAppConfig;
using si::serve::Request;
using si::serve::Response;
using si::serve::Service;
using si::serve::ServiceConfig;
using si::serve::Status;

/// Fresh scratch directory under /tmp, removed (with contents) on scope
/// exit. The tests only ever create shard-N.log files inside it.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/si-dur-test-XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (std::uint32_t s = 0; s < 64; ++s) {
      std::remove(shard_log_path(path, s).c_str());
    }
    ::rmdir(path.c_str());
  }
};

std::vector<unsigned char> read_image(const std::string& path) {
  std::vector<unsigned char> image;
  std::string err;
  EXPECT_TRUE(read_file(path, &image, &err)) << err;
  return image;
}

/// A header + `n` consecutive records (LSN 1..n), all in memory.
std::vector<unsigned char> make_image(std::uint32_t shards, std::uint32_t shard,
                                      std::size_t n) {
  std::vector<unsigned char> image(kHeaderSize);
  encode_header(image.data(), shards, shard);
  for (std::size_t i = 0; i < n; ++i) {
    LogRecord rec;
    rec.lsn = i + 1;
    rec.id = 1000 + i;
    rec.key = 7 * i;
    rec.arg = 7 * i + 1;
    rec.op = KvApp::kPut;
    unsigned char buf[kRecordSize];
    encode_record(buf, rec);
    image.insert(image.end(), buf, buf + kRecordSize);
  }
  return image;
}

// --- CRC32C ------------------------------------------------------------------

TEST(Crc32c, CheckVector) {
  // The universal CRC-32C check vector (iSCSI, ext4, LevelDB all agree).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalSeedMatchesOneShot) {
  const char* msg = "the quick brown fox jumps over the lazy dog";
  const std::size_t len = std::strlen(msg);
  const std::uint32_t whole = crc32c(msg, len);
  for (std::size_t split = 0; split <= len; ++split) {
    const std::uint32_t first = crc32c(msg, split);
    EXPECT_EQ(crc32c(msg + split, len - split, first), whole) << split;
  }
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c("", 0), 0u); }

// --- log format --------------------------------------------------------------

TEST(LogFormat, HeaderRoundTrip) {
  unsigned char buf[kHeaderSize];
  encode_header(buf, 8, 5);
  LogHeader h;
  ASSERT_TRUE(decode_header(buf, sizeof(buf), &h));
  EXPECT_EQ(h.shards, 8u);
  EXPECT_EQ(h.shard, 5u);
}

TEST(LogFormat, HeaderRejectsBadMagicShortBufferAndBadShape) {
  unsigned char buf[kHeaderSize];
  LogHeader h;
  encode_header(buf, 8, 5);
  EXPECT_FALSE(decode_header(buf, kHeaderSize - 1, &h));  // short
  buf[0] ^= 0xFF;
  EXPECT_FALSE(decode_header(buf, kHeaderSize, &h));  // magic
  encode_header(buf, 4, 4);                           // shard >= shards
  EXPECT_FALSE(decode_header(buf, kHeaderSize, &h));
  encode_header(buf, 0, 0);  // zero shards
  EXPECT_FALSE(decode_header(buf, kHeaderSize, &h));
}

TEST(LogFormat, RecordRoundTrip) {
  LogRecord in;
  in.lsn = 42;
  in.id = 0xDEADBEEFCAFEULL;
  in.key = 123456789;
  in.arg = 987654321;
  in.op = KvApp::kDel;
  unsigned char buf[kRecordSize];
  encode_record(buf, in);
  LogRecord out;
  ASSERT_TRUE(decode_record(buf, &out));
  EXPECT_EQ(out.lsn, in.lsn);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.arg, in.arg);
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.flags, 0);
}

TEST(LogFormat, EveryBitFlipIsDetected) {
  LogRecord in;
  in.lsn = 1;
  in.id = 7;
  in.key = 9;
  in.arg = 11;
  in.op = KvApp::kPut;
  unsigned char buf[kRecordSize];
  encode_record(buf, in);
  LogRecord out;
  for (std::size_t byte = 0; byte < kRecordSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<unsigned char>(1 << bit);
      EXPECT_FALSE(decode_record(buf, &out)) << byte << ":" << bit;
      buf[byte] ^= static_cast<unsigned char>(1 << bit);
    }
  }
  EXPECT_TRUE(decode_record(buf, &out));  // restored intact
}

// The central crash property: cut the file at EVERY byte offset and the scan
// must recover exactly the complete-record prefix, never more.
TEST(LogFormat, TornTailAtEveryCutPoint) {
  const std::size_t n = 5;
  const std::vector<unsigned char> image = make_image(2, 0, n);
  ASSERT_EQ(image.size(), kHeaderSize + n * kRecordSize);
  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    const ScanResult r = scan_log(image.data(), cut);
    if (cut < kHeaderSize) {
      EXPECT_EQ(r.end, ScanEnd::kBadHeader) << cut;
      EXPECT_FALSE(r.header_ok()) << cut;
      EXPECT_EQ(r.torn_bytes, cut) << cut;
      continue;
    }
    const std::size_t expect_records = (cut - kHeaderSize) / kRecordSize;
    EXPECT_EQ(r.records.size(), expect_records) << cut;
    EXPECT_EQ(r.last_lsn, expect_records) << cut;
    EXPECT_EQ(r.valid_bytes, kHeaderSize + expect_records * kRecordSize) << cut;
    EXPECT_EQ(r.torn_bytes, cut - r.valid_bytes) << cut;
    const bool on_boundary = (cut - kHeaderSize) % kRecordSize == 0;
    EXPECT_EQ(r.end, on_boundary ? ScanEnd::kEof : ScanEnd::kTorn) << cut;
  }
}

TEST(LogFormat, CorruptionMidLogEndsTheTrustedPrefix) {
  std::vector<unsigned char> image = make_image(1, 0, 5);
  // Flip one payload byte in record 3 (index 2): records 1-2 stay trusted,
  // 3-5 become the torn tail even though 4 and 5 checksum fine — a hole in
  // the middle means the tail's provenance is unknowable.
  image[kHeaderSize + 2 * kRecordSize + 16] ^= 0x01;
  const ScanResult r = scan_log(image.data(), image.size());
  EXPECT_EQ(r.end, ScanEnd::kTorn);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.last_lsn, 2u);
  EXPECT_EQ(r.torn_bytes, 3 * kRecordSize);
}

TEST(LogFormat, LsnGapEndsTheTrustedPrefix) {
  std::vector<unsigned char> image(kHeaderSize);
  encode_header(image.data(), 1, 0);
  for (std::uint64_t lsn : {1, 2, 4}) {  // 3 is missing
    LogRecord rec;
    rec.lsn = lsn;
    rec.id = lsn;
    rec.op = KvApp::kPut;
    unsigned char buf[kRecordSize];
    encode_record(buf, rec);
    image.insert(image.end(), buf, buf + kRecordSize);
  }
  const ScanResult r = scan_log(image.data(), image.size());
  EXPECT_EQ(r.end, ScanEnd::kLsnGap);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.last_lsn, 2u);
}

TEST(LogFormat, ZeroFilledODirectPaddingScansAsTorn) {
  std::vector<unsigned char> image = make_image(1, 0, 3);
  image.resize(image.size() + 1024, 0);  // block-rounding zeros
  const ScanResult r = scan_log(image.data(), image.size());
  EXPECT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.end, ScanEnd::kTorn);
  EXPECT_EQ(r.torn_bytes, 1024u);
}

// --- ShardLog ----------------------------------------------------------------

TEST(ShardLog, AppendFlushReopenContinuesLsns) {
  TempDir dir;
  std::string err;
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kFsync, &err)) << err;
    EXPECT_EQ(log.append(100, 1, 11, KvApp::kPut), 1u);
    EXPECT_EQ(log.append(101, 2, 22, KvApp::kPut), 2u);
    EXPECT_EQ(log.durable_lsn(), 0u);  // nothing flushed yet
    log.flush();
    EXPECT_EQ(log.durable_lsn(), 2u);
    const ShardLogStats s = log.stats();
    EXPECT_EQ(s.appends, 2u);
    EXPECT_EQ(s.bytes, 2 * kRecordSize);
    EXPECT_EQ(s.fsyncs, 1u);
    EXPECT_EQ(s.io_errors, 0u);
  }
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kFsync, &err)) << err;
    EXPECT_EQ(log.truncated_bytes(), 0u);
    EXPECT_EQ(log.durable_lsn(), 2u);  // trusted prefix carried over
    EXPECT_EQ(log.append(102, 3, 33, KvApp::kDel), 3u);
    log.flush();
  }
  const ScanResult r = [&] {
    const auto image = read_image(shard_log_path(dir.path, 0));
    return scan_log(image.data(), image.size());
  }();
  EXPECT_EQ(r.end, ScanEnd::kEof);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[2].id, 102u);
  EXPECT_EQ(r.records[2].op, KvApp::kDel);
}

TEST(ShardLog, ReopenTruncatesTornTail) {
  TempDir dir;
  std::string err;
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kBuffered, &err));
    log.append(1, 1, 1, KvApp::kPut);
    log.flush();
  }
  {  // simulate a crash mid-record: append half a record of garbage
    std::FILE* f = std::fopen(shard_log_path(dir.path, 0).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[17] = "torn-tail-bytes!";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kBuffered, &err));
    EXPECT_EQ(log.truncated_bytes(), 17u);
    EXPECT_EQ(log.append(2, 2, 2, KvApp::kPut), 2u);  // LSNs continue
    log.flush();
  }
  const auto image = read_image(shard_log_path(dir.path, 0));
  const ScanResult r = scan_log(image.data(), image.size());
  EXPECT_EQ(r.end, ScanEnd::kEof);
  EXPECT_EQ(r.records.size(), 2u);
}

TEST(ShardLog, RefusesShardLayoutMismatch) {
  TempDir dir;
  std::string err;
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 2, DurabilityMode::kBuffered, &err));
    log.append(1, 1, 1, KvApp::kPut);
    log.flush();
  }
  ShardLog log;
  EXPECT_FALSE(log.open(dir.path, 0, 4, DurabilityMode::kBuffered, &err));
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

TEST(ShardLog, ODirectModeOpensOrFallsBackAndStaysScannable) {
  // tmpfs refuses O_DIRECT, so this exercises either the direct path or the
  // documented fsync fallback depending on where /tmp lives — both must
  // yield a log whose trusted prefix is exactly what was appended.
  TempDir dir;
  std::string err;
  ShardLog log;
  ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kODirect, &err)) << err;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    log.append(i, i, i, KvApp::kPut);
    if (i % 7 == 0) log.flush();
  }
  log.flush();
  EXPECT_EQ(log.durable_lsn(), 200u);
  log.close();
  const auto image = read_image(shard_log_path(dir.path, 0));
  const ScanResult r = scan_log(image.data(), image.size());
  ASSERT_EQ(r.records.size(), 200u);
  EXPECT_EQ(r.last_lsn, 200u);
  if (log.fallback()) {
    EXPECT_EQ(r.end, ScanEnd::kEof);
  } else {
    // Direct I/O rounds the file to 4 KiB; the padding must scan as torn.
    EXPECT_TRUE(r.end == ScanEnd::kEof || r.end == ScanEnd::kTorn);
  }
}

// --- recovery ----------------------------------------------------------------

KvAppConfig small_app_cfg() {
  KvAppConfig cfg;
  cfg.buckets = 64;
  cfg.seed_elements = 0;  // deterministic: state is exactly the replayed log
  cfg.key_space = 1000;
  return cfg;
}

std::uint64_t get_value(KvApp& app, si::runtime::Runtime& rt,
                        std::uint64_t key) {
  Request req;
  req.op = KvApp::kGet;
  req.key = key;
  req.ro = true;
  Response resp;
  app.execute(rt, 0, req, &resp);
  EXPECT_EQ(resp.status, Status::kOk);
  return resp.value;
}

TEST(Recovery, ReplaysTrustedPrefixAndIsIdempotent) {
  TempDir dir;
  std::string err;
  {
    ShardLog log;
    ASSERT_TRUE(log.open(dir.path, 0, 1, DurabilityMode::kBuffered, &err));
    for (std::uint64_t k = 0; k < 50; ++k) log.append(k, k, k + 7, KvApp::kPut);
    log.append(50, 3, 0, KvApp::kDel);   // delete key 3 again
    log.append(51, 5, 999, KvApp::kPut); // overwrite key 5
    log.flush();
  }

  si::runtime::RuntimeConfig rcfg;
  rcfg.max_threads = 1;

  KvApp once(small_app_cfg(), 1);
  si::runtime::Runtime rt_once(rcfg);
  const RecoveryReport rep = recover_into(once, rt_once, dir.path);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.replayed, 52u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.torn_bytes, 0u);
  EXPECT_EQ(rep.last_lsn_sum, 52u);

  // Idempotence: replaying the same trusted prefix twice into one app ends
  // in the same state as replaying it once into a fresh app (puts are
  // last-writer-wins, dels absorbing).
  KvApp twice(small_app_cfg(), 1);
  si::runtime::Runtime rt_twice(rcfg);
  ASSERT_TRUE(recover_into(twice, rt_twice, dir.path).ok);
  ASSERT_TRUE(recover_into(twice, rt_twice, dir.path).ok);

  for (std::uint64_t k = 0; k < 50; ++k) {
    const std::uint64_t expect = k == 3 ? 0 : (k == 5 ? 999 : k + 7);
    EXPECT_EQ(get_value(once, rt_once, k), expect) << k;
    EXPECT_EQ(get_value(twice, rt_twice, k), expect) << k;
  }
}

TEST(Recovery, ScanDirRejectsMixedLayouts) {
  TempDir dir;
  std::string err;
  {
    ShardLog a;
    ASSERT_TRUE(a.open(dir.path, 0, 2, DurabilityMode::kBuffered, &err));
    a.append(1, 1, 1, KvApp::kPut);
    a.flush();
  }
  {  // hand-write shard 1 with a disagreeing shard count
    std::vector<unsigned char> image(kHeaderSize);
    encode_header(image.data(), 3, 1);
    std::FILE* f = std::fopen(shard_log_path(dir.path, 1).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(image.data(), 1, image.size(), f);
    std::fclose(f);
  }
  std::vector<ShardScan> scans;
  EXPECT_FALSE(scan_dir(dir.path, &scans, &err));
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

// --- service integration -----------------------------------------------------

TEST(ServiceDurability, ThrowsWithoutLogDir) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.durability.mode = DurabilityMode::kBuffered;  // dir left empty
  KvApp app(small_app_cfg(), 1);
  EXPECT_THROW((Service<KvApp>(app, cfg)), std::invalid_argument);
}

// The group-commit latency/ordering invariant: no completion may fire before
// the shard's durable LSN covers the response's LSN.
TEST(ServiceDurability, AcksNeverPrecedeTheCoveringFsync) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 256;
  cfg.durability.mode = DurabilityMode::kFsync;
  cfg.durability.dir = dir.path;
  cfg.durability.group_commit_us = 200;
  cfg.durability.batch = 16;
  KvApp app(small_app_cfg(), cfg.shards);
  Service<KvApp> svc(app, cfg);

  struct Ctx {
    Service<KvApp>* svc;
    int shard;
    std::atomic<std::uint64_t> acked{0};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> max_lsn{0};
  } ctx{&svc, 0};

  const std::uint64_t kWrites = 500;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    Request req;
    req.id = i;
    req.op = KvApp::kPut;
    req.key = i % 100;
    req.arg = i;
    req.ctx = &ctx;
    req.done = [](void* c, const Response& resp) {
      auto* x = static_cast<Ctx*>(c);
      // The ack-gating contract, checked at the only moment it can be
      // checked: inside the completion itself.
      if (resp.lsn == 0 || x->svc->durable_lsn(x->shard) < resp.lsn) {
        x->violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::uint64_t seen = x->max_lsn.load(std::memory_order_relaxed);
      while (seen < resp.lsn &&
             !x->max_lsn.compare_exchange_weak(seen, resp.lsn)) {
      }
      x->acked.fetch_add(1, std::memory_order_release);
    };
    if (svc.submit_to(ctx.shard, req).accepted()) {
      ++accepted;
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      --i;  // bounded queue: retry until accepted (closed loop)
    }
  }
  while (ctx.acked.load(std::memory_order_acquire) < accepted) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ctx.violations.load(), 0u);
  EXPECT_EQ(ctx.max_lsn.load(), accepted);  // shard 0 logged every put
  svc.stop();
  EXPECT_GE(svc.durability_stats().fsyncs, 1u);
  EXPECT_EQ(svc.durability_stats().acks_held, 0u);
}

// Satellite fix: a clean stop() flushes and fsyncs the buffered tail, so a
// SIGTERM drain is recoverable with zero replay loss — the file scans to
// exactly eof with every acked write present.
TEST(ServiceDurability, StopFlushesBufferedTailForCleanRecovery) {
  TempDir dir;
  const std::uint64_t kWrites = 200;
  {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.durability.mode = DurabilityMode::kBuffered;
    cfg.durability.dir = dir.path;
    // A tick far longer than the test and a doorbell batch larger than the
    // write count: nothing forces a flush before stop() — the final drain
    // flush is the only reason the tail can reach the file.
    cfg.durability.group_commit_us = 30'000'000;
    cfg.durability.batch = 100000;
    KvApp app(small_app_cfg(), cfg.shards);
    Service<KvApp> svc(app, cfg);
    std::atomic<std::uint64_t> acked{0};
    for (std::uint64_t k = 0; k < kWrites; ++k) {
      Request req;
      req.id = k;
      req.op = KvApp::kPut;
      req.key = k;
      req.arg = k + 1;
      req.ctx = &acked;
      req.done = [](void* c, const Response& resp) {
        EXPECT_EQ(resp.status, Status::kOk);
        EXPECT_GT(resp.lsn, 0u);
        static_cast<std::atomic<std::uint64_t>*>(c)->fetch_add(
            1, std::memory_order_relaxed);
      };
      ASSERT_TRUE(svc.submit(req).accepted());
    }
    svc.stop();  // drains workers, then the daemon's final flush releases all
    EXPECT_EQ(acked.load(), kWrites);
    EXPECT_EQ(svc.durability_stats().acks_held, 0u);
    EXPECT_EQ(svc.durability_stats().appends, kWrites);
  }

  // Every shard file scans clean, and together they hold all acked writes.
  std::vector<ShardScan> scans;
  std::string err;
  ASSERT_TRUE(scan_dir(dir.path, &scans, &err)) << err;
  ASSERT_EQ(scans.size(), 2u);
  std::size_t total = 0;
  for (const auto& s : scans) {
    EXPECT_EQ(s.scan.end, ScanEnd::kEof) << s.path;
    total += s.scan.records.size();
  }
  EXPECT_EQ(total, kWrites);

  // And replaying them reproduces the acked state exactly.
  si::runtime::RuntimeConfig rcfg;
  rcfg.max_threads = 1;
  KvApp fresh(small_app_cfg(), 1);
  si::runtime::Runtime rt(rcfg);
  const RecoveryReport rep = recover_into(fresh, rt, dir.path);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.replayed, kWrites);
  EXPECT_EQ(rep.failed, 0u);
  for (std::uint64_t k = 0; k < kWrites; ++k) {
    EXPECT_EQ(get_value(fresh, rt, k), k + 1) << k;
  }
}

// End-to-end with natural key routing: puts spread over both shards, the
// per-key single-shard invariant makes per-shard LSN-order replay correct.
TEST(ServiceDurability, RecoveryReproducesRoutedWrites) {
  TempDir dir;
  const std::uint64_t kKeys = 300;
  {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.durability.mode = DurabilityMode::kFsync;
    cfg.durability.dir = dir.path;
    KvApp app(small_app_cfg(), cfg.shards);
    Service<KvApp> svc(app, cfg);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      Response resp;
      Request req;
      req.id = k;
      req.op = KvApp::kPut;
      req.key = k;
      req.arg = k * 3 + 1;
      ASSERT_TRUE(svc.call(req, &resp));
    }
    // Overwrite a few and delete a few — replay must honour per-key order.
    for (std::uint64_t k = 0; k < kKeys; k += 10) {
      Response resp;
      Request req;
      req.id = 1000 + k;
      req.op = (k % 20 == 0) ? KvApp::kDel : KvApp::kPut;
      req.key = k;
      req.arg = 4242;
      ASSERT_TRUE(svc.call(req, &resp));
    }
    svc.stop();
  }
  si::runtime::RuntimeConfig rcfg;
  rcfg.max_threads = 1;
  KvApp fresh(small_app_cfg(), 1);
  si::runtime::Runtime rt(rcfg);
  const RecoveryReport rep = recover_into(fresh, rt, dir.path);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.shards, 2u);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::uint64_t expect = k * 3 + 1;
    if (k % 20 == 0) expect = 0;          // deleted
    else if (k % 10 == 0) expect = 4242;  // overwritten
    EXPECT_EQ(get_value(fresh, rt, k), expect) << k;
  }
}

}  // namespace
