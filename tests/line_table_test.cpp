// Unit tests for the conflict table (ReaderSet, LineEntry, LineTable).
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "p8htm/line_table.hpp"

namespace {

using namespace si::p8;

TEST(ReaderSetTest, SetTestClear) {
  ReaderSet rs;
  EXPECT_TRUE(rs.empty());
  rs.set(0);
  rs.set(63);
  rs.set(64);
  rs.set(kMaxThreads - 1);
  EXPECT_TRUE(rs.test(0));
  EXPECT_TRUE(rs.test(63));
  EXPECT_TRUE(rs.test(64));
  EXPECT_TRUE(rs.test(kMaxThreads - 1));
  EXPECT_FALSE(rs.test(1));
  rs.clear(63);
  EXPECT_FALSE(rs.test(63));
  EXPECT_FALSE(rs.empty());
}

TEST(ReaderSetTest, AnyOtherExcludesSelf) {
  ReaderSet rs;
  rs.set(5);
  EXPECT_FALSE(rs.any_other(5));
  EXPECT_TRUE(rs.any_other(6));
  rs.set(70);
  EXPECT_TRUE(rs.any_other(5));
}

TEST(ReaderSetTest, ForEachOtherEnumeratesAllButSkip) {
  ReaderSet rs;
  rs.set(1);
  rs.set(64);
  rs.set(100);
  std::set<int> seen;
  rs.for_each_other(64, [&](int t) { seen.insert(t); });
  EXPECT_EQ(seen, (std::set<int>{1, 100}));
  seen.clear();
  rs.for_each_other(-1, [&](int t) { seen.insert(t); });
  EXPECT_EQ(seen, (std::set<int>{1, 64, 100}));
}

TEST(LineEntryTest, UnownedSemantics) {
  LineEntry e;
  EXPECT_TRUE(e.unowned());
  e.writer = 3;
  EXPECT_FALSE(e.unowned());
  e.writer = LineEntry::kNoWriter;
  e.readers.set(2);
  EXPECT_FALSE(e.unowned());
  e.readers.clear(2);
  EXPECT_TRUE(e.unowned());
}

TEST(LineTableTest, FindOrCreateThenReclaim) {
  LineTable table(8);
  auto& bucket = table.bucket_for(42);
  std::lock_guard guard(bucket.lock);
  EXPECT_EQ(bucket.find(42), nullptr);
  LineEntry& e = bucket.find_or_create(42);
  EXPECT_EQ(e.line, 42u);
  EXPECT_EQ(bucket.find(42), &e);
  bucket.reclaim_if_unowned(42);
  EXPECT_EQ(bucket.find(42), nullptr);
}

TEST(LineTableTest, ReclaimKeepsOwnedEntry) {
  LineTable table(8);
  auto& bucket = table.bucket_for(7);
  std::lock_guard guard(bucket.lock);
  LineEntry& e = bucket.find_or_create(7);
  e.readers.set(1);
  bucket.reclaim_if_unowned(7);
  EXPECT_NE(bucket.find(7), nullptr);
  e.readers.clear(1);
  bucket.reclaim_if_unowned(7);
  EXPECT_EQ(bucket.find(7), nullptr);
}

TEST(LineTableTest, DistinctLinesCoexistInOneBucket) {
  LineTable table(1);  // 2 buckets: heavy collisions by construction
  std::vector<si::util::LineId> lines = {1, 3, 5, 7, 9, 11};
  for (auto l : lines) {
    auto& b = table.bucket_for(l);
    std::lock_guard guard(b.lock);
    b.find_or_create(l).writer = static_cast<std::int32_t>(l);
  }
  for (auto l : lines) {
    auto& b = table.bucket_for(l);
    std::lock_guard guard(b.lock);
    auto* e = b.find(l);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->writer, static_cast<std::int32_t>(l));
  }
}

TEST(LineTableTest, BucketCountMatchesBits) {
  EXPECT_EQ(LineTable(4).bucket_count(), 16u);
  EXPECT_EQ(LineTable(0).bucket_count(), 1u);
}

}  // namespace
