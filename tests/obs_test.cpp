// Observability layer (src/obs): tracer ring semantics, exporter byte
// stability, the safety-wait span invariant the paper's Algorithm 1 implies,
// metrics counts, and real/sim taxonomy parity.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hashmap/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/driver.hpp"
#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"

namespace {

using si::obs::Tracer;
using si::obs::TraceEventKind;
using si::obs::TraceRecord;

// Everything here exercises the live tracer; under -DSIHTM_TRACE=OFF the
// stubs record nothing, so the whole file degrades to skips.
#define SKIP_IF_TRACE_COMPILED_OUT()                 \
  if (!si::obs::kTraceEnabled) {                     \
    GTEST_SKIP() << "built with SI_TRACE=0";         \
  }

// --- ring buffer semantics ---------------------------------------------------

TEST(TracerTest, EmitsAndDrainsInOrder) {
  SKIP_IF_TRACE_COMPILED_OUT();
  Tracer t(2, 16);
  t.emit(0, TraceEventKind::kBegin, 10.0);
  t.emit(0, TraceEventKind::kCommit, 20.0, 1);
  t.emit(1, TraceEventKind::kBegin, 15.0);

  const auto r0 = t.drain(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].kind, TraceEventKind::kBegin);
  EXPECT_EQ(r0[0].ts_ns, 10.0);
  EXPECT_EQ(r0[1].kind, TraceEventKind::kCommit);
  EXPECT_EQ(r0[1].arg, 1u);
  EXPECT_EQ(t.drain(1).size(), 1u);
  EXPECT_EQ(t.emitted(0), 2u);
  EXPECT_EQ(t.dropped(0), 0u);
}

TEST(TracerTest, RingWrapKeepsNewestOldestFirst) {
  SKIP_IF_TRACE_COMPILED_OUT();
  Tracer t(1, 8);
  for (int i = 0; i < 11; ++i) {
    t.emit(0, TraceEventKind::kSuspend, static_cast<double>(i));
  }
  EXPECT_EQ(t.emitted(0), 11u);
  EXPECT_EQ(t.dropped(0), 3u);
  const auto recs = t.drain(0);
  ASSERT_EQ(recs.size(), 8u);  // capacity; the 3 oldest fell off
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].ts_ns, static_cast<double>(i + 3)) << "slot " << i;
  }
}

TEST(TracerTest, EpochBumpsOnBeginOnly) {
  SKIP_IF_TRACE_COMPILED_OUT();
  Tracer t(1, 16);
  t.emit(0, TraceEventKind::kBegin, 1.0);
  t.emit(0, TraceEventKind::kAbort, 2.0);
  t.emit(0, TraceEventKind::kBegin, 3.0);
  t.emit(0, TraceEventKind::kCommit, 4.0, 2);
  const auto recs = t.drain(0);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].epoch, 1u);
  EXPECT_EQ(recs[1].epoch, 1u);  // abort belongs to attempt 1
  EXPECT_EQ(recs[2].epoch, 2u);
  EXPECT_EQ(recs[3].epoch, 2u);
}

// --- exporter ----------------------------------------------------------------

// Golden render of a hand-built one-transaction trace: any byte-level drift
// in the exporter (key order, spacing, number formatting) is a breaking
// change for downstream tooling and must show up here.
TEST(ChromeTraceTest, GoldenSingleTransaction) {
  SKIP_IF_TRACE_COMPILED_OUT();
  Tracer t(1, 16);
  t.emit(0, TraceEventKind::kBegin, 100.0);
  t.emit(0, TraceEventKind::kSuspend, 200.0);
  t.emit(0, TraceEventKind::kResume, 250.0);
  t.emit(0, TraceEventKind::kSafetyWaitEnter, 300.0, 1);
  t.emit(0, TraceEventKind::kStragglerRetire, 400.0, 3);
  t.emit(0, TraceEventKind::kSafetyWaitExit, 500.0);
  t.emit(0, TraceEventKind::kCommit, 600.0, 1);

  std::ostringstream os;
  si::obs::write_chrome_trace(os, t);
  const std::string expected = R"({
  "traceEvents": [
    {
      "name": "process_name",
      "ph": "M",
      "pid": 0,
      "tid": 0,
      "args": {
        "name": "si"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 0,
      "tid": 0,
      "args": {
        "name": "worker 0"
      }
    },
    {
      "name": "tx",
      "ph": "B",
      "pid": 0,
      "tid": 0,
      "ts": 0.10000000000000001,
      "args": {
        "epoch": 1,
        "path": "hw"
      }
    },
    {
      "name": "suspend",
      "ph": "i",
      "pid": 0,
      "tid": 0,
      "ts": 0.20000000000000001,
      "s": "t",
      "args": {
        "epoch": 1
      }
    },
    {
      "name": "resume",
      "ph": "i",
      "pid": 0,
      "tid": 0,
      "ts": 0.25,
      "s": "t",
      "args": {
        "epoch": 1
      }
    },
    {
      "name": "safety-wait",
      "ph": "B",
      "pid": 0,
      "tid": 0,
      "ts": 0.29999999999999999,
      "args": {
        "epoch": 1,
        "stragglers": 1
      }
    },
    {
      "name": "straggler-retire",
      "ph": "i",
      "pid": 0,
      "tid": 0,
      "ts": 0.40000000000000002,
      "s": "t",
      "args": {
        "epoch": 1,
        "straggler": 3
      }
    },
    {
      "name": "safety-wait",
      "ph": "E",
      "pid": 0,
      "tid": 0,
      "ts": 0.5
    },
    {
      "name": "tx",
      "ph": "E",
      "pid": 0,
      "tid": 0,
      "ts": 0.59999999999999998,
      "args": {
        "outcome": "commit",
        "attempts": 1
      }
    }
  ],
  "displayTimeUnit": "ns"
}
)";
  EXPECT_EQ(os.str(), expected);
}

TEST(ChromeTraceTest, TruncatedRingStaysBalanced) {
  SKIP_IF_TRACE_COMPILED_OUT();
  // A begin whose close fell off the ring must be force-closed, and a close
  // with no open must be skipped — the rendered span stream stays balanced.
  Tracer t(1, 4);
  t.emit(0, TraceEventKind::kBegin, 1.0);     // will be overwritten
  t.emit(0, TraceEventKind::kCommit, 2.0, 1); // survives, with no open tx
  t.emit(0, TraceEventKind::kBegin, 3.0);
  t.emit(0, TraceEventKind::kBegin, 4.0);     // closes the previous as truncated
  t.emit(0, TraceEventKind::kCommit, 5.0, 1);
  std::ostringstream os;
  si::obs::write_chrome_trace(os, t);
  const std::string out = os.str();
  std::size_t opens = 0, closes = 0, pos = 0;
  while ((pos = out.find("\"ph\": \"B\"", pos)) != std::string::npos) {
    ++opens;
    pos += 1;
  }
  pos = 0;
  while ((pos = out.find("\"ph\": \"E\"", pos)) != std::string::npos) {
    ++closes;
    pos += 1;
  }
  EXPECT_EQ(opens, closes);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

// --- deterministic sim runs --------------------------------------------------

struct SimTraceRun {
  std::string chrome;
  std::vector<std::vector<TraceRecord>> records;  // per tid
  std::uint64_t commits = 0;
  si::obs::MetricsSnapshot metrics;
};

SimTraceRun run_sim_hashmap(bool with_obs, int threads = 4,
                            double virtual_ns = 2e5) {
  SimTraceRun out;
  Tracer tracer(threads);
  si::obs::Metrics metrics(threads);
  const si::obs::ObsConfig obs =
      with_obs ? si::obs::ObsConfig{&tracer, &metrics} : si::obs::ObsConfig{};
  si::sim::SimEngine eng(si::sim::SimMachineConfig{}, threads);
  si::sim::SimSiHtm cc(eng, 10, 0, nullptr, obs);
  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 50;
  wcfg.avg_chain = 20;
  wcfg.ro_pct = 50;
  si::hashmap::Workload workload(wcfg, threads);
  const auto rs =
      eng.run(virtual_ns, [&](int tid) { workload.step(cc, tid); });
  out.commits = rs.totals.commits;
  std::ostringstream os;
  si::obs::write_chrome_trace(os, tracer);
  out.chrome = os.str();
  for (int t = 0; t < threads; ++t) out.records.push_back(tracer.drain(t));
  out.metrics = metrics.snapshot();
  return out;
}

TEST(ChromeTraceTest, SimExportByteStableAcrossRuns) {
  SKIP_IF_TRACE_COMPILED_OUT();
  const auto a = run_sim_hashmap(true);
  const auto b = run_sim_hashmap(true);
  EXPECT_GT(a.commits, 0u);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.records, b.records);
}

TEST(ObsEquivalenceTest, TracingDoesNotChangeSimOutcome) {
  SKIP_IF_TRACE_COMPILED_OUT();
  // Obs hooks are pure bookkeeping: they never advance virtual time, so a
  // traced run and an untraced run of the same seed commit identically.
  const auto traced = run_sim_hashmap(true);
  const auto plain = run_sim_hashmap(false);
  EXPECT_GT(traced.commits, 0u);
  EXPECT_EQ(traced.commits, plain.commits);
  for (const auto& recs : plain.records) EXPECT_TRUE(recs.empty());
}

TEST(ObsInvariantTest, EveryCommittedHwUpdateTxHasAWaitSpan) {
  SKIP_IF_TRACE_COMPILED_OUT();
  // Algorithm 1: an update ROT publishes, then waits for stragglers before
  // HTMEnd. The trace must show a matched safety-wait span inside every
  // committed hw-path transaction, even when there were zero stragglers.
  const auto run = run_sim_hashmap(true);
  std::uint64_t hw_commits = 0;
  for (const auto& recs : run.records) {
    bool open = false, has_wait = false, wait_open = false, is_hw = false;
    for (const auto& r : recs) {
      switch (r.kind) {
        case TraceEventKind::kBegin:
          open = true;
          has_wait = false;
          is_hw = (r.arg & (si::obs::kBeginRo | si::obs::kBeginSgl)) == 0;
          break;
        case TraceEventKind::kSafetyWaitEnter:
          EXPECT_TRUE(open);
          wait_open = true;
          break;
        case TraceEventKind::kSafetyWaitExit:
          EXPECT_TRUE(wait_open);
          wait_open = false;
          has_wait = true;
          break;
        case TraceEventKind::kCommit:
          EXPECT_FALSE(wait_open);
          if (open && is_hw) {
            ++hw_commits;
            EXPECT_TRUE(has_wait) << "committed hw tx without a safety wait";
          }
          open = false;
          break;
        case TraceEventKind::kAbort:
          open = false;
          wait_open = false;
          break;
        default:
          break;
      }
    }
  }
  EXPECT_GT(hw_commits, 0u);
}

TEST(ObsMetricsTest, CountsMatchTraceAndStats) {
  SKIP_IF_TRACE_COMPILED_OUT();
  const auto run = run_sim_hashmap(true);
  std::uint64_t commits = 0, waits = 0;
  for (const auto& recs : run.records) {
    for (const auto& r : recs) {
      if (r.kind == TraceEventKind::kCommit) ++commits;
      if (r.kind == TraceEventKind::kSafetyWaitExit) ++waits;
    }
  }
  EXPECT_EQ(commits, run.commits);
  EXPECT_EQ(run.metrics.commit_latency.count(), run.commits);
  EXPECT_EQ(run.metrics.retries.count(), run.commits);
  EXPECT_EQ(run.metrics.safety_wait.count(), waits);
  EXPECT_GT(run.metrics.safety_wait.count(), 0u);
  EXPECT_GE(run.metrics.safety_wait_p99_ns(), run.metrics.safety_wait_p50_ns());
}

// --- real/sim taxonomy parity ------------------------------------------------

std::set<TraceEventKind> kinds_of(const std::vector<TraceRecord>& recs) {
  std::set<TraceEventKind> kinds;
  for (const auto& r : recs) kinds.insert(r.kind);
  return kinds;
}

TEST(ObsTaxonomyTest, RealAndSimEmitTheSameLifecycleKinds) {
  SKIP_IF_TRACE_COMPILED_OUT();
  constexpr int kThreads = 2;
  const std::set<TraceEventKind> core = {
      TraceEventKind::kBegin,          TraceEventKind::kSuspend,
      TraceEventKind::kResume,         TraceEventKind::kSafetyWaitEnter,
      TraceEventKind::kSafetyWaitExit, TraceEventKind::kCommit,
  };

  std::set<TraceEventKind> sim_kinds;
  {
    const auto run = run_sim_hashmap(true, kThreads);
    for (const auto& recs : run.records) {
      const auto k = kinds_of(recs);
      sim_kinds.insert(k.begin(), k.end());
    }
  }

  std::set<TraceEventKind> real_kinds;
  {
    Tracer tracer(kThreads);
    si::obs::Metrics metrics(kThreads);
    si::sihtm::SiHtm cc({.max_threads = kThreads,
                         .obs = si::obs::ObsConfig{&tracer, &metrics}});
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = 50;
    wcfg.avg_chain = 20;
    wcfg.ro_pct = 50;
    si::hashmap::Workload workload(wcfg, kThreads);
    si::runtime::run_fixed_ops(cc, kThreads, 500,
                               [&](int tid) { workload.step(cc, tid); });
    for (int t = 0; t < kThreads; ++t) {
      const auto k = kinds_of(tracer.drain(t));
      real_kinds.insert(k.begin(), k.end());
    }
  }

  for (const auto kind : core) {
    EXPECT_TRUE(sim_kinds.count(kind)) << "sim missing " << to_string(kind);
    EXPECT_TRUE(real_kinds.count(kind)) << "real missing " << to_string(kind);
  }
}

}  // namespace
