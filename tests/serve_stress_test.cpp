// Concurrency stress for the serving layer: the MPSC ring hammered by many
// producers, and a full service under sustained multi-producer load. These
// run in the TSan lane (CMakePresets.json tsan preset) as well as tier1, so
// they are the data-race canaries for src/serve — keep the iteration counts
// meaningful but TSan-affordable.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "serve/kv_app.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::serve;

TEST(ServeQueueStress, MpscConservationAndPerProducerFifo) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 20000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  RequestQueue q(1024);

  std::atomic<std::uint64_t> order_violations{0};
  std::atomic<std::uint64_t> key_sum{0};
  std::thread consumer([&] {
    std::vector<std::uint64_t> next(kProducers, 0);
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    Request batch[64];
    while (total < kTotal) {
      const std::size_t n = q.pop_batch(batch, 64);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const auto p = static_cast<std::size_t>(batch[i].id >> 32);
        const std::uint64_t seq = batch[i].id & 0xffffffffu;
        if (p >= kProducers || seq != next[p]) {
          order_violations.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++next[p];
        }
        sum += batch[i].key;
      }
      total += n;
    }
    key_sum.store(sum, std::memory_order_release);
  });

  std::vector<std::thread> producers;
  std::uint64_t expected_sum = 0;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Request req;
        req.id = (static_cast<std::uint64_t>(p) << 32) | i;
        req.key = static_cast<std::uint64_t>(p) * 1000003u + i;
        while (q.try_push(req) != Admit::kAccepted) std::this_thread::yield();
      }
    });
  }
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected_sum += p * 1000003u + i;
    }
  }
  for (auto& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(order_violations.load(), 0u);  // per-producer FIFO held throughout
  EXPECT_EQ(key_sum.load(), expected_sum);  // nothing lost or duplicated
  EXPECT_TRUE(q.empty());
}

TEST(ServeShardStress, ServiceCompletesEverySubmissionUnderLoad) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 128;
  cfg.runtime.backend = si::runtime::Backend::kSiHtm;
  KvAppConfig app_cfg;
  app_cfg.buckets = 128;
  app_cfg.seed_elements = 1000;
  app_cfg.key_space = 2000;
  KvApp app(app_cfg, cfg.shards);
  Service<KvApp> svc(app, cfg);

  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      si::util::Xoshiro256 rng(500 + static_cast<std::uint64_t>(p));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Request req;
        req.id = (static_cast<std::uint64_t>(p) << 32) | i;
        req.key = rng.below(app_cfg.key_space);
        const std::uint64_t roll = rng.below(10);
        req.op = roll < 7 ? KvApp::kGet : roll < 9 ? KvApp::kPut : KvApp::kDel;
        req.arg = req.key + 1;
        req.ro = KvApp::is_ro(req.op);
        req.done = [](void* ctx, const Response&) {
          static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(
              1, std::memory_order_relaxed);
        };
        req.ctx = &done;
        while (!svc.submit(req).accepted()) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.stop();

  const auto c = svc.counters();
  EXPECT_EQ(c.accepted, kProducers * kPerProducer);
  EXPECT_EQ(c.completed, c.accepted);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(done.load(), c.accepted);
}

}  // namespace
