// Tests of the transactional hash map and its workload driver across all
// four backends.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "hashmap/hashmap.hpp"
#include "hashmap/node_pool.hpp"
#include "hashmap/workload.hpp"
#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::hashmap;

// A trivial pass-through transaction handle for single-threaded unit tests
// of the data structure itself.
struct DirectTx {
  template <typename T>
  T read(const T* addr) {
    return *addr;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    *addr = v;
  }
};

TEST(NodePoolTest, AllocateReuseAfterGenerations) {
  Pool pool;
  Node* a = pool.allocate();
  EXPECT_EQ(pool.allocated(), 1u);
  pool.retire(a);
  // Not reusable until kGenerations advances have passed.
  for (int i = 0; i < Pool::kGenerations - 1; ++i) {
    pool.advance();
  }
  Node* b = pool.allocate();
  EXPECT_NE(b, a);
  pool.advance();  // now a's generation has been recycled
  Node* c = pool.allocate();
  EXPECT_EQ(c, a);
}

TEST(NodePoolTest, ReleaseIsImmediatelyReusable) {
  Pool pool;
  Node* a = pool.allocate();
  pool.release(a);
  EXPECT_EQ(pool.allocate(), a);
}

TEST(HashMapTest, SeedLookup) {
  HashMap map(16);
  Pool pool;
  map.seed(1, 100, pool);
  map.seed(17, 200, pool);  // same bucket as 1 (mod 16)
  map.seed(2, 300, pool);
  EXPECT_EQ(map.count(), 3u);

  DirectTx tx;
  std::uint64_t v = 0;
  EXPECT_TRUE(map.lookup(tx, 1, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(map.lookup(tx, 17, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_FALSE(map.lookup(tx, 33, &v));
}

TEST(HashMapTest, InsertNewAndUpdateExisting) {
  HashMap map(8);
  Pool pool;
  DirectTx tx;

  Node* fresh = pool.allocate();
  EXPECT_TRUE(map.insert(tx, 5, 50, fresh));
  EXPECT_EQ(map.count(), 1u);

  Node* fresh2 = pool.allocate();
  EXPECT_FALSE(map.insert(tx, 5, 55, fresh2));  // update in place
  pool.release(fresh2);
  EXPECT_EQ(map.count(), 1u);
  std::uint64_t v = 0;
  EXPECT_TRUE(map.lookup(tx, 5, &v));
  EXPECT_EQ(v, 55u);
}

TEST(HashMapTest, PrependAllowsDuplicatesAndPairsWithRemove) {
  HashMap map(4);
  Pool pool;
  DirectTx tx;
  map.prepend(tx, 9, 90, pool.allocate());
  map.prepend(tx, 9, 91, pool.allocate());  // duplicate key, multiset style
  EXPECT_EQ(map.count(), 2u);
  std::uint64_t v = 0;
  EXPECT_TRUE(map.lookup(tx, 9, &v));
  EXPECT_EQ(v, 91u);  // most recent prepend is found first

  Node* unlinked = nullptr;
  EXPECT_TRUE(map.remove(tx, 9, &unlinked));
  EXPECT_EQ(unlinked->value, 91u);  // removes the head-most match
  EXPECT_EQ(map.count(), 1u);
  EXPECT_TRUE(map.lookup(tx, 9, &v));
  EXPECT_EQ(v, 90u);
}

TEST(HashMapTest, RemoveHeadMiddleAndMissing) {
  HashMap map(1);  // single bucket: controls chain order (prepend)
  Pool pool;
  DirectTx tx;
  map.seed(1, 10, pool);
  map.seed(2, 20, pool);
  map.seed(3, 30, pool);  // chain: 3 -> 2 -> 1

  Node* unlinked = nullptr;
  EXPECT_TRUE(map.remove(tx, 2, &unlinked));  // middle
  ASSERT_NE(unlinked, nullptr);
  EXPECT_EQ(unlinked->key, 2u);
  EXPECT_EQ(map.count(), 2u);

  EXPECT_TRUE(map.remove(tx, 3, &unlinked));  // head
  EXPECT_EQ(map.count(), 1u);

  EXPECT_FALSE(map.remove(tx, 99, &unlinked));
  EXPECT_EQ(map.count(), 1u);

  std::uint64_t v = 0;
  EXPECT_TRUE(map.lookup(tx, 1, &v));
  EXPECT_EQ(v, 10u);
}

TEST(HashMapTest, ChainLengthMatchesSeedCount) {
  HashMap map(10);
  Pool pool;
  for (std::uint64_t k = 0; k < 500; ++k) map.seed(k, k, pool);
  EXPECT_EQ(map.count(), 500u);  // ~50 per bucket
}

// Cross-backend integration: concurrent inserts/removes/lookups keep the
// map's node count an exact function of committed operations.
class HashMapBackendTest : public ::testing::TestWithParam<si::runtime::Backend> {};

TEST_P(HashMapBackendTest, ConcurrentInsertRemoveKeepsCountExact) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 8;
  si::runtime::Runtime rt(cfg);

  HashMap map(32);
  Pool seed_pool;
  constexpr std::uint64_t kSeeded = 256;
  for (std::uint64_t k = 0; k < kSeeded; ++k) map.seed(k, 1, seed_pool);

  constexpr int kThreads = 3;
  constexpr int kPairs = 150;  // each thread: insert (fresh key) then remove it
  std::vector<Pool> pools(kThreads);

  si::runtime::run_fixed_ops(rt, kThreads, kPairs, [&](int tid) {
    // Each thread works on its private key range: structural churn in shared
    // buckets without logical interference.
    thread_local std::uint64_t next = 0;
    const std::uint64_t key = 100000 + 1000 * static_cast<std::uint64_t>(tid) + next++;
    Pool& pool = pools[static_cast<std::size_t>(tid)];

    Node* fresh = pool.allocate();
    bool used = false;
    rt.execute(false, [&](auto& tx) { used = map.insert(tx, key, 7, fresh); });
    if (!used) pool.release(fresh);
    pool.advance();

    Node* unlinked = nullptr;
    rt.execute(false, [&](auto& tx) {
      unlinked = nullptr;
      map.remove(tx, key, &unlinked);
    });
    if (unlinked != nullptr) pool.retire(unlinked);
    pool.advance();
  });

  EXPECT_EQ(map.count(), kSeeded);  // every insert matched by its remove
}

TEST_P(HashMapBackendTest, LookupsSeeSeededValues) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 8;
  si::runtime::Runtime rt(cfg);

  HashMap map(16);
  Pool pool;
  for (std::uint64_t k = 0; k < 64; ++k) map.seed(k, k * 3, pool);

  si::runtime::run_fixed_ops(rt, 2, 200, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(13 + tid);
    const std::uint64_t key = rng.below(64);
    std::uint64_t v = 0;
    bool found = false;
    rt.execute(true, [&](auto& tx) { found = map.lookup(tx, key, &v); });
    ASSERT_TRUE(found);
    ASSERT_EQ(v, key * 3);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, HashMapBackendTest,
    ::testing::Values(si::runtime::Backend::kHtm, si::runtime::Backend::kSiHtm,
                      si::runtime::Backend::kP8tm, si::runtime::Backend::kSilo),
    [](const auto& info) {
      return std::string(si::runtime::to_string(info.param)) == "SI-HTM"
                 ? "SiHtm"
                 : std::string(si::runtime::to_string(info.param));
    });

TEST(WorkloadTest, SeedsExpectedElementCount) {
  WorkloadConfig cfg;
  cfg.buckets = 100;
  cfg.avg_chain = 50;
  Workload w(cfg, 4);
  EXPECT_EQ(w.map().count(), 5000u);
  EXPECT_EQ(w.key_space(), 10000u);
}

TEST(WorkloadTest, StepsRunOnEveryBackendAndKeepSizeStationary) {
  for (auto backend : {si::runtime::Backend::kHtm, si::runtime::Backend::kSiHtm,
                       si::runtime::Backend::kP8tm, si::runtime::Backend::kSilo}) {
    si::runtime::RuntimeConfig rcfg;
    rcfg.backend = backend;
    rcfg.max_threads = 8;
    si::runtime::Runtime rt(rcfg);

    WorkloadConfig cfg;
    cfg.buckets = 50;
    cfg.avg_chain = 10;
    cfg.ro_pct = 50;
    Workload w(cfg, 2);
    const std::size_t seeded = w.map().count();

    si::runtime::run_fixed_ops(rt, 2, 100, [&](int tid) { w.step(rt, tid); });

    // Each thread's updates alternate insert/remove; at most one insert per
    // thread can be outstanding.
    const std::size_t final_count = w.map().count();
    EXPECT_LE(final_count, seeded + 2);
    EXPECT_GE(final_count + 2, seeded);
  }
}

}  // namespace
