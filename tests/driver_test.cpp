// Tests of the multi-thread run driver (runtime/driver.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "sihtm/sihtm.hpp"
#include "util/stats.hpp"

namespace {

using namespace si::runtime;

TEST(DriverTest, RunThreadsExecutesSetupAndWorkerPerThread) {
  std::atomic<int> setups{0};
  std::atomic<int> workers{0};
  const double secs = run_threads(
      4, std::chrono::nanoseconds{0},
      [&](int tid) {
        EXPECT_GE(tid, 0);
        EXPECT_LT(tid, 4);
        setups.fetch_add(1);
      },
      [&](WorkerContext ctx) {
        EXPECT_FALSE(ctx.should_stop());
        workers.fetch_add(1);
      });
  EXPECT_EQ(setups.load(), 4);
  EXPECT_EQ(workers.load(), 4);
  EXPECT_GT(secs, 0.0);
}

TEST(DriverTest, TimedRunSetsStopFlag) {
  std::atomic<std::uint64_t> iterations{0};
  run_threads(
      2, std::chrono::milliseconds{50}, [](int) {},
      [&](WorkerContext ctx) {
        while (!ctx.should_stop()) {
          iterations.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      });
  EXPECT_GT(iterations.load(), 0u);
}

TEST(DriverTest, TimedRunHonorsDeadline) {
  const auto t0 = std::chrono::steady_clock::now();
  const double secs = run_threads(
      2, std::chrono::milliseconds{100}, [](int) {},
      [&](WorkerContext ctx) {
        while (!ctx.should_stop()) std::this_thread::yield();
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // The run must last at least the deadline (sleep_for never wakes early)
  // and not run unbounded past it — the tolerance is generous because CI
  // machines stall, but a stuck stop flag would blow it by orders of
  // magnitude.
  EXPECT_GE(secs, 0.095);
  EXPECT_LT(secs, 5.0);
  EXPECT_GE(wall, 0.095);
}

TEST(DriverTest, FixedOpsNeverObserveStop) {
  // Fixed-op runs pass a zero duration, so the stop flag must stay false for
  // the whole run on every thread.
  std::atomic<std::uint64_t> observed{0};
  run_threads(
      4, std::chrono::nanoseconds{0}, [](int) {},
      [&](WorkerContext ctx) {
        for (int i = 0; i < 50000; ++i) {
          if (ctx.should_stop()) {
            observed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
  EXPECT_EQ(observed.load(), 0u);
}

TEST(DriverTest, ResetPhaseCountersZeroesFastPathTelemetry) {
  // Uses SiHtm directly (it exposes htm()): thread_stats() re-mirrors the
  // emulation's fast-path counters on harvest, so a reset that missed the
  // HtmRuntime side would resurrect the old hits here.
  si::sihtm::SiHtmConfig cc_cfg;
  cc_cfg.max_threads = 2;
  si::sihtm::SiHtm cc(cc_cfg);
  struct alignas(128) Cell {
    std::uint64_t v = 0;
  } cells[4];
  auto op = [&](int) {
    cc.execute(false, [&](auto& tx) {
      // Repeat accesses to the same lines exercise the owned-line fast path.
      for (auto& c : cells) tx.write(&c.v, tx.read(&c.v) + 1);
    });
  };

  const auto first = run_fixed_ops(cc, 1, 200, op);
  ASSERT_GT(first.totals.fast_path.hits + first.totals.fast_path.misses, 0u);

  reset_phase_counters(cc);
  const auto totals = cc.htm().fast_path_totals();
  EXPECT_EQ(totals.hits, 0u);
  EXPECT_EQ(totals.misses, 0u);
  EXPECT_EQ(si::util::aggregate(cc.thread_stats(), 0.0).totals.fast_path.hits,
            0u);

  // A fresh phase after the reset measures only itself: single-threaded, the
  // emulation is deterministic, so the second run reproduces the first.
  const auto second = run_fixed_ops(cc, 1, 200, op);
  EXPECT_EQ(second.totals.commits, first.totals.commits);
  EXPECT_EQ(second.totals.fast_path.hits, first.totals.fast_path.hits);
  EXPECT_EQ(second.totals.fast_path.misses, first.totals.fast_path.misses);
}

TEST(DriverTest, FixedOpsRunsExactQuota) {
  RuntimeConfig cfg;
  cfg.backend = Backend::kSiHtm;
  cfg.max_threads = 4;
  Runtime rt(cfg);
  struct alignas(128) Cell {
    std::uint64_t v = 0;
  } cell;

  const auto stats = run_fixed_ops(rt, 3, 50, [&](int) {
    rt.execute(false, [&](auto& tx) { tx.write(&cell.v, cell.v + 1); });
  });
  EXPECT_EQ(stats.totals.commits, 150u);
}

TEST(DriverTest, StatsResetBetweenRuns) {
  RuntimeConfig cfg;
  cfg.backend = Backend::kSilo;
  cfg.max_threads = 2;
  Runtime rt(cfg);
  struct alignas(128) Cell {
    std::uint64_t v = 0;
  } cell;

  auto op = [&](int) {
    rt.execute(false, [&](auto& tx) { tx.write(&cell.v, tx.read(&cell.v) + 1); });
  };
  const auto first = run_fixed_ops(rt, 2, 20, op);
  const auto second = run_fixed_ops(rt, 2, 10, op);
  EXPECT_EQ(first.totals.commits, 40u);
  EXPECT_EQ(second.totals.commits, 20u);  // not 60: stats were reset
}

}  // namespace
