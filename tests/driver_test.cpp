// Tests of the multi-thread run driver (runtime/driver.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace si::runtime;

TEST(DriverTest, RunThreadsExecutesSetupAndWorkerPerThread) {
  std::atomic<int> setups{0};
  std::atomic<int> workers{0};
  const double secs = run_threads(
      4, std::chrono::nanoseconds{0},
      [&](int tid) {
        EXPECT_GE(tid, 0);
        EXPECT_LT(tid, 4);
        setups.fetch_add(1);
      },
      [&](WorkerContext ctx) {
        EXPECT_FALSE(ctx.should_stop());
        workers.fetch_add(1);
      });
  EXPECT_EQ(setups.load(), 4);
  EXPECT_EQ(workers.load(), 4);
  EXPECT_GT(secs, 0.0);
}

TEST(DriverTest, TimedRunSetsStopFlag) {
  std::atomic<std::uint64_t> iterations{0};
  run_threads(
      2, std::chrono::milliseconds{50}, [](int) {},
      [&](WorkerContext ctx) {
        while (!ctx.should_stop()) {
          iterations.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      });
  EXPECT_GT(iterations.load(), 0u);
}

TEST(DriverTest, FixedOpsRunsExactQuota) {
  RuntimeConfig cfg;
  cfg.backend = Backend::kSiHtm;
  cfg.max_threads = 4;
  Runtime rt(cfg);
  struct alignas(128) Cell {
    std::uint64_t v = 0;
  } cell;

  const auto stats = run_fixed_ops(rt, 3, 50, [&](int) {
    rt.execute(false, [&](auto& tx) { tx.write(&cell.v, cell.v + 1); });
  });
  EXPECT_EQ(stats.totals.commits, 150u);
}

TEST(DriverTest, StatsResetBetweenRuns) {
  RuntimeConfig cfg;
  cfg.backend = Backend::kSilo;
  cfg.max_threads = 2;
  Runtime rt(cfg);
  struct alignas(128) Cell {
    std::uint64_t v = 0;
  } cell;

  auto op = [&](int) {
    rt.execute(false, [&](auto& tx) { tx.write(&cell.v, tx.read(&cell.v) + 1); });
  };
  const auto first = run_fixed_ops(rt, 2, 20, op);
  const auto second = run_fixed_ops(rt, 2, 10, op);
  EXPECT_EQ(first.totals.commits, 40u);
  EXPECT_EQ(second.totals.commits, 20u);  // not 60: stats were reset
}

}  // namespace
