// Tests of the P8-HTM emulation: tracking, capacity, conflict matrix,
// suspend/resume, helper rollback of suspended victims, and a serializable
// stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "p8htm/htm.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace {

using namespace si::p8;
using si::util::AbortCause;
using si::util::kLineSize;

/// Shared array where each slot sits on its own modelled cache line.
struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

HtmConfig small_machine() {
  HtmConfig cfg;
  cfg.topo.cores = 10;
  cfg.topo.smt = 8;
  cfg.tmcam_lines = 64;
  return cfg;
}

/// Waits for `flag` with a yielding backoff (single-CPU friendliness).
void await(const std::atomic<bool>& flag) {
  si::util::Backoff b;
  while (!flag.load(std::memory_order_acquire)) b.pause();
}

TEST(HtmBasics, CommitPersistsWrites) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  Cell x;
  rt.begin(TxMode::kHtm);
  rt.store(&x.v, std::uint64_t{7});
  EXPECT_EQ(rt.load(&x.v), 7u);  // own write visible (R3)
  rt.commit();
  EXPECT_EQ(x.v, 7u);
  EXPECT_FALSE(rt.in_tx());
}

TEST(HtmBasics, SelfAbortRollsBack) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  Cell x, y;
  x.v = 1;
  rt.begin(TxMode::kRot);
  rt.store(&x.v, std::uint64_t{2});
  rt.store(&y.v, std::uint64_t{3});
  try {
    rt.self_abort(AbortCause::kExplicit);
    FAIL() << "self_abort must throw";
  } catch (const TxAbort& a) {
    EXPECT_EQ(a.cause, AbortCause::kExplicit);
  }
  EXPECT_EQ(x.v, 1u);
  EXPECT_EQ(y.v, 0u);
  EXPECT_FALSE(rt.in_tx());
  EXPECT_EQ(rt.tmcam_used(0), 0u);
}

TEST(HtmBasics, RollbackRestoresOverwritesInReverseOrder) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  Cell x;
  x.v = 10;
  rt.begin(TxMode::kRot);
  rt.store(&x.v, std::uint64_t{20});
  rt.store(&x.v, std::uint64_t{30});
  EXPECT_THROW(rt.self_abort(AbortCause::kExplicit), TxAbort);
  EXPECT_EQ(x.v, 10u);
}

TEST(HtmBasics, MultiLineStoreAndLoad) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  alignas(kLineSize) unsigned char buf[3 * kLineSize] = {};
  unsigned char src[2 * kLineSize];
  for (std::size_t i = 0; i < sizeof(src); ++i) src[i] = static_cast<unsigned char>(i);
  rt.begin(TxMode::kRot);
  rt.store_bytes(buf + 17, src, sizeof(src));  // misaligned, spans 3 lines
  unsigned char back[2 * kLineSize];
  rt.load_bytes(back, buf + 17, sizeof(back));
  EXPECT_EQ(std::memcmp(back, src, sizeof(src)), 0);
  EXPECT_EQ(rt.tracked_lines(), 3u);
  EXPECT_THROW(rt.self_abort(AbortCause::kExplicit), TxAbort);
  for (std::size_t i = 0; i < sizeof(buf); ++i) ASSERT_EQ(buf[i], 0u);
}

TEST(HtmCapacity, HtmReadsChargeTmcam) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  std::vector<Cell> cells(100);
  rt.begin(TxMode::kHtm);
  AbortCause cause = AbortCause::kNone;
  std::size_t done = 0;
  try {
    for (auto& c : cells) {
      (void)rt.load(&c.v);
      ++done;
    }
    rt.commit();
  } catch (const TxAbort& a) {
    cause = a.cause;
  }
  EXPECT_EQ(cause, AbortCause::kCapacity);
  EXPECT_EQ(done, 64u);  // 65th distinct line overflows the TMCAM
  EXPECT_EQ(rt.tmcam_used(0), 0u);
}

TEST(HtmCapacity, RotReadsAreFree) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  std::vector<Cell> cells(1000);
  rt.begin(TxMode::kRot);
  for (auto& c : cells) (void)rt.load(&c.v);
  EXPECT_EQ(rt.tracked_lines(), 0u);
  rt.commit();  // a 1000-line read set commits fine in a ROT
}

TEST(HtmCapacity, RotWritesStillBounded) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  std::vector<Cell> cells(100);
  rt.begin(TxMode::kRot);
  AbortCause cause = AbortCause::kNone;
  try {
    for (auto& c : cells) rt.store(&c.v, std::uint64_t{1});
    rt.commit();
  } catch (const TxAbort& a) {
    cause = a.cause;
  }
  EXPECT_EQ(cause, AbortCause::kCapacity);
  for (auto& c : cells) ASSERT_EQ(c.v, 0u);  // all rolled back
}

TEST(HtmCapacity, SmtThreadsShareTheCoreBudget) {
  // tids 0 and 10 both map to core 0 under scatter pinning on 10 cores.
  HtmRuntime rt(small_machine());
  std::vector<Cell> a(40), b(40);
  std::atomic<bool> a_holds{false}, done{false};
  AbortCause b_cause = AbortCause::kNone;

  std::thread ta([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    for (auto& c : a) rt.store(&c.v, std::uint64_t{1});
    a_holds.store(true, std::memory_order_release);
    await(done);
    rt.commit();
  });
  std::thread tb([&] {
    rt.register_thread(10);
    await(a_holds);
    rt.begin(TxMode::kRot);
    try {
      for (auto& c : b) rt.store(&c.v, std::uint64_t{1});
      rt.commit();
    } catch (const TxAbort& abort) {
      b_cause = abort.cause;
    }
    done.store(true, std::memory_order_release);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(b_cause, AbortCause::kCapacity);  // 40 + 40 > 64 shared lines
}

TEST(HtmCapacity, DifferentCoresDoNotShare) {
  HtmRuntime rt(small_machine());
  std::vector<Cell> a(40), b(40);
  std::atomic<bool> a_holds{false}, done{false};
  AbortCause b_cause = AbortCause::kNone;

  std::thread ta([&] {
    rt.register_thread(0);  // core 0
    rt.begin(TxMode::kRot);
    for (auto& c : a) rt.store(&c.v, std::uint64_t{1});
    a_holds.store(true, std::memory_order_release);
    await(done);
    rt.commit();
  });
  std::thread tb([&] {
    rt.register_thread(1);  // core 1
    await(a_holds);
    rt.begin(TxMode::kRot);
    try {
      for (auto& c : b) rt.store(&c.v, std::uint64_t{1});
      rt.commit();
    } catch (const TxAbort& abort) {
      b_cause = abort.cause;
    }
    done.store(true, std::memory_order_release);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(b_cause, AbortCause::kNone);
}

TEST(HtmConflicts, ReadKillsActiveWriterAndSeesOldValue) {
  HtmRuntime rt(small_machine());
  Cell x;
  x.v = 5;
  std::atomic<bool> written{false};
  AbortCause writer_cause = AbortCause::kNone;
  std::uint64_t reader_saw = ~0ull;

  std::thread writer([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{6});
    written.store(true, std::memory_order_release);
    try {
      si::util::Backoff b;
      for (;;) {
        rt.check_killed();
        b.pause();
      }
    } catch (const TxAbort& a) {
      writer_cause = a.cause;
    }
  });
  std::thread reader([&] {
    rt.register_thread(1);
    await(written);
    reader_saw = rt.plain_load(&x.v);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(writer_cause, AbortCause::kConflictRead);
  EXPECT_EQ(reader_saw, 5u);  // never the uncommitted 6
  EXPECT_EQ(x.v, 5u);
}

TEST(HtmConflicts, WriteWriteKillsTheNewcomer) {
  HtmRuntime rt(small_machine());
  Cell x;
  std::atomic<bool> first_holds{false}, second_done{false};
  AbortCause second_cause = AbortCause::kNone;

  std::thread first([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    first_holds.store(true, std::memory_order_release);
    await(second_done);
    rt.commit();
  });
  std::thread second([&] {
    rt.register_thread(1);
    await(first_holds);
    rt.begin(TxMode::kRot);
    try {
      rt.store(&x.v, std::uint64_t{2});
      rt.commit();
    } catch (const TxAbort& a) {
      second_cause = a.cause;
    }
    second_done.store(true, std::memory_order_release);
  });
  first.join();
  second.join();
  EXPECT_EQ(second_cause, AbortCause::kConflictWrite);
  EXPECT_EQ(x.v, 1u);  // the first writer survived and committed
}

TEST(HtmConflicts, WriteAfterRotReadIsTolerated) {
  // Fig. 2A: ROT reads are untracked, so a later writer sees no conflict.
  HtmRuntime rt(small_machine());
  Cell x;
  std::atomic<bool> read_done{false}, write_done{false};
  bool reader_committed = false, writer_committed = false;

  std::thread reader([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    EXPECT_EQ(rt.load(&x.v), 0u);
    read_done.store(true, std::memory_order_release);
    await(write_done);
    rt.commit();
    reader_committed = true;
  });
  std::thread writer([&] {
    rt.register_thread(1);
    await(read_done);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{9});
    rt.commit();
    writer_committed = true;
    write_done.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(reader_committed);
  EXPECT_TRUE(writer_committed);
  EXPECT_EQ(x.v, 9u);
}

TEST(HtmConflicts, WriteKillsTrackedHtmReader) {
  HtmRuntime rt(small_machine());
  Cell x;
  std::atomic<bool> read_done{false};
  AbortCause reader_cause = AbortCause::kNone;

  std::thread reader([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kHtm);
    (void)rt.load(&x.v);
    read_done.store(true, std::memory_order_release);
    try {
      si::util::Backoff b;
      for (;;) {
        rt.check_killed();
        b.pause();
      }
    } catch (const TxAbort& a) {
      reader_cause = a.cause;
    }
  });
  std::thread writer([&] {
    rt.register_thread(1);
    await(read_done);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{3});
    rt.commit();
  });
  reader.join();
  writer.join();
  EXPECT_EQ(reader_cause, AbortCause::kConflictWrite);
  EXPECT_EQ(x.v, 3u);
}

TEST(HtmSuspend, SuspendedAccessesAreUntrackedAndSurviveAbort) {
  HtmRuntime rt(small_machine());
  rt.register_thread(0);
  Cell x, y;
  rt.begin(TxMode::kRot);
  rt.store(&x.v, std::uint64_t{1});
  rt.suspend();
  EXPECT_TRUE(rt.is_suspended());
  rt.plain_store(&y.v, std::uint64_t{2});  // non-transactional
  rt.resume();
  EXPECT_FALSE(rt.is_suspended());
  EXPECT_THROW(rt.self_abort(AbortCause::kExplicit), TxAbort);
  EXPECT_EQ(x.v, 0u);  // transactional write rolled back
  EXPECT_EQ(y.v, 2u);  // suspended write survives
}

TEST(HtmSuspend, KillDuringSuspensionTakesEffectAtResume) {
  HtmRuntime rt(small_machine());
  Cell x;
  x.v = 4;
  std::atomic<bool> suspended{false}, read_done{false};
  std::uint64_t reader_saw = ~0ull;
  AbortCause victim_cause = AbortCause::kNone;

  std::thread victim([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kRot);
    rt.store(&x.v, std::uint64_t{5});
    rt.suspend();
    suspended.store(true, std::memory_order_release);
    await(read_done);
    try {
      rt.resume();
      rt.commit();
    } catch (const TxAbort& a) {
      victim_cause = a.cause;
    }
  });
  std::thread reader([&] {
    rt.register_thread(1);
    await(suspended);
    // The victim is suspended and not polling; the reader must roll it back
    // on its behalf rather than hang.
    reader_saw = rt.plain_load(&x.v);
    read_done.store(true, std::memory_order_release);
  });
  victim.join();
  reader.join();
  EXPECT_EQ(reader_saw, 4u);
  EXPECT_EQ(victim_cause, AbortCause::kConflictRead);
  EXPECT_EQ(x.v, 4u);
}

TEST(HtmSgl, KillLineOwnersAbortsSubscribers) {
  HtmRuntime rt(small_machine());
  Cell lock_word;
  std::atomic<bool> subscribed{false};
  AbortCause sub_cause = AbortCause::kNone;

  std::thread subscriber([&] {
    rt.register_thread(0);
    rt.begin(TxMode::kHtm);
    rt.subscribe_line(&lock_word);
    subscribed.store(true, std::memory_order_release);
    try {
      si::util::Backoff b;
      for (;;) {
        rt.check_killed();
        b.pause();
      }
    } catch (const TxAbort& a) {
      sub_cause = a.cause;
    }
  });
  std::thread acquirer([&] {
    rt.register_thread(1);
    await(subscribed);
    rt.kill_line_owners(&lock_word, AbortCause::kKilledBySgl);
  });
  subscriber.join();
  acquirer.join();
  EXPECT_EQ(sub_cause, AbortCause::kKilledBySgl);
}

TEST(HtmApi, RegisterThreadValidatesRange) {
  HtmRuntime rt(small_machine());
  EXPECT_THROW(rt.register_thread(-1), std::out_of_range);
  EXPECT_THROW(rt.register_thread(kMaxThreads), std::out_of_range);
  EXPECT_NO_THROW(rt.register_thread(kMaxThreads - 1));
}

TEST(HtmApi, UnregisteredThreadThrows) {
  HtmRuntime rt(small_machine());
  std::thread t([&] { EXPECT_THROW((void)rt.thread_id(), std::logic_error); });
  t.join();
}

TEST(HtmApi, RotReadTrackingFractionCharges) {
  HtmConfig cfg = small_machine();
  cfg.rot_read_tracking_pct = 100;  // footnote 1 at its extreme
  HtmRuntime rt(cfg);
  rt.register_thread(0);
  std::vector<Cell> cells(10);
  rt.begin(TxMode::kRot);
  for (auto& c : cells) (void)rt.load(&c.v);
  EXPECT_EQ(rt.tracked_lines(), 10u);
  rt.commit();
}

// Serializability stress: concurrent HTM transfers between accounts keep the
// total balance invariant, and no transaction ever observes uncommitted data
// (sum of any read pair stays consistent).
TEST(HtmStress, ConcurrentTransfersConserveTotal) {
  HtmRuntime rt(small_machine());
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rt.register_thread(t);
      si::util::Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int from = static_cast<int>(rng.below(kAccounts));
        int to = static_cast<int>(rng.below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        for (;;) {
          try {
            rt.begin(TxMode::kHtm);
            const auto f = rt.load(&accounts[from].v);
            const auto g = rt.load(&accounts[to].v);
            rt.store(&accounts[from].v, f - 1);
            rt.store(&accounts[to].v, g + 1);
            rt.commit();
            break;
          } catch (const TxAbort&) {
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t total = std::accumulate(
      accounts.begin(), accounts.end(), std::uint64_t{0},
      [](std::uint64_t s, const Cell& c) { return s + c.v; });
  EXPECT_EQ(total, std::uint64_t{1000} * kAccounts);
}

}  // namespace
